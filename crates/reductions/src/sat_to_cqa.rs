//! The Section 9 coNP-hardness gadget: 3SAT (≤3 occurrences per variable)
//! reduces to `certain(q)` for any 2way-determined `q` with a *nice
//! fork-tripath*.
//!
//! For a literal-occurrence pattern the paper builds, per variable `l`,
//! two or three substituted copies of the nice tripath `Θ`:
//!
//! * `l ∈ V₃` — `l` occurs once with one polarity (clause `C`) and twice
//!   with the other (clauses `C₁`, `C₂`):
//!   `Θ_{l,C}  = Θ[⟨C,l⟩x, ⟨C,l⟩y, ⟨C,l⟩z, C, ⟨C,C₂,l⟩, ⟨C,C₁,l⟩]`,
//!   `Θ_{l,C₁} = Θ[…C₁…, C₁, ⟨C₁,C₁,l⟩, ⟨C,C₁,l⟩]`,
//!   `Θ_{l,C₂} = Θ[…C₂…, C₂, ⟨C,C₂,l⟩, ⟨C₂,C₂,l⟩]`.
//! * `l ∈ V₂` — one positive clause `C`, one negative `C′`:
//!   `Θ_{l,C}  = Θ[…C…, C, ⟨C,C,l⟩, ⟨C,C′,l⟩]`,
//!   `Θ_{l,C′} = Θ[…C′…, C′, ⟨C′,C′,l⟩, ⟨C,C′,l⟩]`.
//!
//! Root keys share the clause element `C`, merging the roots of all
//! literals of one clause into *the block of `C`*; the shared leaf keys
//! wire up literal conflicts. Singleton blocks are padded with solution-
//! free facts. Lemma 9.2: `φ` satisfiable ⟺ `D[φ] ⊭ certain(q)`.

use cqa_model::{Database, Elem, Fact};
use cqa_query::{is_solution, Query};
use cqa_sat::{Cnf, PVar};
use cqa_tripath::{find_nice_fork, NiceWitness, SearchConfig, Tripath};
use std::collections::HashMap;

/// A prepared reduction for one query: the nice fork-tripath and its
/// witnesses, reusable across formulas.
#[derive(Clone, Debug)]
pub struct SatReduction {
    q: Query,
    tripath: Tripath,
    witness: NiceWitness,
}

/// Error building or applying the reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReductionError {
    /// No nice fork-tripath found within the search budget.
    NoNiceForkTripath,
    /// The input formula is not in ≤3-occurrence normal form.
    NotOcc3NormalForm,
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::NoNiceForkTripath => {
                write!(
                    f,
                    "query admits no nice fork-tripath within the search budget"
                )
            }
            ReductionError::NotOcc3NormalForm => {
                write!(f, "formula must be 3-CNF without unit clauses, ≤3 occurrences and both polarities per variable")
            }
        }
    }
}

impl std::error::Error for ReductionError {}

impl SatReduction {
    /// Prepare the reduction for `q` by finding a nice fork-tripath.
    pub fn new(q: &Query, cfg: &SearchConfig) -> Result<SatReduction, ReductionError> {
        let (tripath, witness) = find_nice_fork(q, cfg).ok_or(ReductionError::NoNiceForkTripath)?;
        Ok(SatReduction {
            q: q.clone(),
            tripath,
            witness,
        })
    }

    /// The nice fork-tripath backing the reduction.
    pub fn tripath(&self) -> &Tripath {
        &self.tripath
    }

    /// The niceness witnesses `x y z u v w`.
    pub fn witness(&self) -> &NiceWitness {
        &self.witness
    }

    /// Build `D[φ]`. `φ` must be in ≤3-occurrence normal form
    /// (see `cqa_sat::to_occ3_normal_form`). The empty formula yields the
    /// empty database (vacuously satisfiable ⇒ not certain).
    pub fn database(&self, phi: &Cnf) -> Result<Database, ReductionError> {
        let well_formed = phi.is_3cnf()
            && phi.is_occ3_normal_form()
            && phi.clauses().iter().all(|c| c.len() >= 2);
        if !phi.is_empty() && !well_formed {
            return Err(ReductionError::NotOcc3NormalForm);
        }
        let mut db = Database::new(*self.q.signature());

        // Per-variable gadgets.
        for (pvar, (pos, neg)) in phi.occurrences() {
            let l = lit_elem(pvar);
            // Clause indices where the variable occurs positively/negatively.
            let pos_clauses = clauses_with(phi, pvar, true);
            let neg_clauses = clauses_with(phi, pvar, false);
            match (pos, neg) {
                (1, 1) => {
                    let c = clause_elem(pos_clauses[0]);
                    let c_neg = clause_elem(neg_clauses[0]);
                    // Θ_{l,C} and Θ_{l,C'}.
                    self.add_gadget(&mut db, l, c, pair3(c, c, l), pair3(c, c_neg, l));
                    self.add_gadget(
                        &mut db,
                        l,
                        c_neg,
                        pair3(c_neg, c_neg, l),
                        pair3(c, c_neg, l),
                    );
                }
                (1, 2) | (2, 1) => {
                    // Singleton polarity clause C; doubled clauses C1, C2.
                    let (c_idx, c1_idx, c2_idx) = if pos == 1 {
                        (pos_clauses[0], neg_clauses[0], neg_clauses[1])
                    } else {
                        (neg_clauses[0], pos_clauses[0], pos_clauses[1])
                    };
                    let c = clause_elem(c_idx);
                    let c1 = clause_elem(c1_idx);
                    let c2 = clause_elem(c2_idx);
                    self.add_gadget(&mut db, l, c, pair3(c, c2, l), pair3(c, c1, l));
                    self.add_gadget(&mut db, l, c1, pair3(c1, c1, l), pair3(c, c1, l));
                    self.add_gadget(&mut db, l, c2, pair3(c, c2, l), pair3(c2, c2, l));
                }
                other => {
                    unreachable!("occ3 normal form guarantees (1,1),(1,2),(2,1); got {other:?}")
                }
            }
        }

        // Pad singleton blocks with solution-free facts.
        pad_singleton_blocks(&self.q, &mut db);
        Ok(db)
    }

    /// Insert `Θ[⟨C,l⟩x, ⟨C,l⟩y, ⟨C,l⟩z, C, αv, αw]` into `db`.
    fn add_gadget(&self, db: &mut Database, l: Elem, c: Elem, alpha_v: Elem, alpha_w: Elem) {
        let w = &self.witness;
        let mut sub: HashMap<Elem, Elem> = HashMap::new();
        // αx = αy iff x = y etc. holds automatically: the image embeds the
        // original element.
        for &(from, tag) in &[(w.x, "x"), (w.y, "y"), (w.z, "z")] {
            sub.insert(
                from,
                Elem::pair(Elem::pair(c, l), Elem::pair(from, Elem::named(tag))),
            );
        }
        sub.insert(w.u, c);
        sub.insert(w.v, alpha_v);
        sub.insert(w.w, alpha_w);
        for fact in self.tripath.facts() {
            let mapped: Vec<Elem> = fact
                .tuple()
                .iter()
                .map(|e| *sub.get(e).unwrap_or(e))
                .collect();
            db.insert(Fact::new(fact.rel(), mapped))
                .expect("same signature");
        }
    }
}

/// The domain element standing for propositional variable `p`.
fn lit_elem(p: PVar) -> Elem {
    Elem::pair(Elem::named("lit"), Elem::int(p.0 as i64))
}

/// The domain element standing for clause number `i`.
fn clause_elem(i: usize) -> Elem {
    Elem::pair(Elem::named("cl"), Elem::int(i as i64))
}

/// `⟨a, b, l⟩` as a left-nested pair element.
fn pair3(a: Elem, b: Elem, c: Elem) -> Elem {
    Elem::tuple(&[a, b, c])
}

/// Indices of clauses containing the variable with the given polarity.
fn clauses_with(phi: &Cnf, p: PVar, positive: bool) -> Vec<usize> {
    phi.clauses()
        .iter()
        .enumerate()
        .filter(|(_, cl)| {
            cl.iter()
                .any(|lit| lit.var() == p && lit.is_positive() == positive)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Add, to every singleton block, a fresh fact forming no solution with any
/// fact of the database (the paper: "such a fact can always be defined").
/// For 2way-determined queries the fresh non-key elements make any solution
/// impossible — asserted here.
pub fn pad_singleton_blocks(q: &Query, db: &mut Database) {
    let sig = q.signature();
    let singleton_keys: Vec<(cqa_model::RelId, Vec<Elem>)> = db
        .block_ids()
        .filter(|&b| db.block(b).len() == 1)
        .map(|b| {
            let f = db.fact(db.block(b)[0]);
            (f.rel(), f.key(sig).to_vec())
        })
        .collect();
    for (rel, key) in singleton_keys {
        let mut tuple = key.clone();
        tuple.extend((sig.key_len()..sig.arity()).map(|_| Elem::fresh()));
        let pad = Fact::new(rel, tuple);
        debug_assert!(
            !is_solution(q, &pad, &pad)
                && db
                    .facts()
                    .all(|(_, t)| !is_solution(q, &pad, t) && !is_solution(q, t, &pad)),
            "padding fact unexpectedly forms a solution"
        );
        db.insert(pad).expect("same signature");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::examples;
    use cqa_sat::{solve, to_occ3_normal_form, Lit};
    use cqa_solvers::certain_brute;

    fn reduction() -> SatReduction {
        SatReduction::new(&examples::q2(), &SearchConfig::default()).expect("q2 reduction")
    }

    #[test]
    fn empty_formula_not_certain() {
        let r = reduction();
        let db = r.database(&Cnf::new()).unwrap();
        assert!(!certain_brute(&examples::q2(), &db));
    }

    #[test]
    fn rejects_non_normal_form() {
        let r = reduction();
        // p0 occurs four times.
        let f = Cnf::from_clauses([
            vec![Lit::pos(PVar(0))],
            vec![Lit::pos(PVar(0))],
            vec![Lit::neg(PVar(0))],
            vec![Lit::neg(PVar(0))],
        ]);
        assert_eq!(
            r.database(&f).err(),
            Some(ReductionError::NotOcc3NormalForm)
        );
    }

    #[test]
    fn every_block_has_at_least_two_facts() {
        let r = reduction();
        let f = to_occ3_normal_form(&figure2_formula());
        let db = r.database(&f).unwrap();
        for b in db.block_ids() {
            assert!(db.block(b).len() >= 2, "block {b:?} not padded");
        }
    }

    /// The Figure 2 formula: (¬s ∨ t ∨ u)(¬s ∨ ¬t ∨ u)(s ∨ ¬t ∨ ¬u).
    fn figure2_formula() -> Cnf {
        let (s, t, u) = (PVar(0), PVar(1), PVar(2));
        Cnf::from_clauses([
            vec![Lit::neg(s), Lit::pos(t), Lit::pos(u)],
            vec![Lit::neg(s), Lit::neg(t), Lit::pos(u)],
            vec![Lit::pos(s), Lit::neg(t), Lit::neg(u)],
        ])
    }

    #[test]
    fn lemma_9_2_on_figure2() {
        // Figure 2's formula is satisfiable, so D[φ] must not be certain.
        // A falsifying repair is found quickly; full certainty proofs on
        // gadget databases this size belong to the benches.
        let r = reduction();
        let phi = to_occ3_normal_form(&figure2_formula());
        assert!(phi.is_occ3_normal_form());
        let db = r.database(&phi).unwrap();
        let sat = solve(&phi).is_sat();
        assert!(sat);
        let out = cqa_solvers::certain_brute_budgeted(&examples::q2(), &db, 100_000_000);
        assert!(
            matches!(out, cqa_solvers::BruteOutcome::NotCertain(_)),
            "Lemma 9.2 violated on Figure 2: expected a falsifying repair, got {out:?}"
        );
    }

    #[test]
    fn unit_clauses_rejected() {
        // The gadget cannot encode unit clauses (the padded singleton root
        // block would let a repair skip the clause); `to_occ3_normal_form`
        // removes them by unit propagation.
        let p0 = PVar(0);
        let phi = Cnf::from_clauses([vec![Lit::pos(p0)], vec![Lit::neg(p0)]]);
        let r = reduction();
        assert_eq!(
            r.database(&phi).err(),
            Some(ReductionError::NotOcc3NormalForm)
        );
        // Normalizing first yields the canonical unsat core, and Lemma 9.2
        // holds for it (covered by lemma_9_2_on_three_occurrence_unsat-style
        // instances; the canonical core itself is exercised in the
        // integration tests).
        let core = to_occ3_normal_form(&phi);
        assert!(!solve(&core).is_sat());
        assert!(r.database(&core).is_ok());
    }

    #[test]
    fn lemma_9_2_on_minimal_sat() {
        // (p₀ ∨ p₁)(¬p₀ ∨ ¬p₁): satisfiable, normal form. D[φ] must not be
        // certain.
        let (p0, p1) = (PVar(0), PVar(1));
        let phi = Cnf::from_clauses([
            vec![Lit::pos(p0), Lit::pos(p1)],
            vec![Lit::neg(p0), Lit::neg(p1)],
        ]);
        assert!(phi.is_occ3_normal_form());
        assert!(solve(&phi).is_sat());
        let r = reduction();
        let db = r.database(&phi).unwrap();
        assert!(
            !certain_brute(&examples::q2(), &db),
            "Lemma 9.2 violated on sat instance"
        );
    }

    #[test]
    fn lemma_9_2_on_three_occurrence_unsat() {
        // Force p0 true and false through implication chains with every
        // variable at ≤ 3 occurrences:
        //   (p0 ∨ p1)(p0 ∨ ¬p1)(¬p0 ∨ p2)(¬p0 ∨ ¬p2)
        // p0 occurs 4 times — normalization splits it; the result stays
        // small enough for an exhaustive certainty proof.
        let (p0, p1, p2) = (PVar(0), PVar(1), PVar(2));
        let f = Cnf::from_clauses([
            vec![Lit::pos(p0), Lit::pos(p1)],
            vec![Lit::pos(p0), Lit::neg(p1)],
            vec![Lit::neg(p0), Lit::pos(p2)],
            vec![Lit::neg(p0), Lit::neg(p2)],
        ]);
        let phi = to_occ3_normal_form(&f);
        assert!(!solve(&phi).is_sat());
        let r = reduction();
        let db = r.database(&phi).unwrap();
        let out = cqa_solvers::certain_brute_budgeted(&examples::q2(), &db, 500_000_000);
        assert!(
            matches!(out, cqa_solvers::BruteOutcome::Certain),
            "Lemma 9.2 violated on UNSAT instance: {out:?}"
        );
    }
}
