//! # cqa — consistent query answering for two-atom self-join queries
//!
//! An executable reproduction of *"A Dichotomy in the Complexity of
//! Consistent Query Answering for Two Atom Queries With Self-Join"*
//! (Padmanabha, Segoufin, Sirangelo — PODS 2024, arXiv:2309.12059).
//!
//! Given a Boolean conjunctive query `q = A ∧ B` over a single relation
//! with a primary key, the library decides where `certain(q)` — "does `q`
//! hold in *every* repair of an inconsistent database?" — falls in the
//! PTime / coNP-complete dichotomy, and evaluates it with the algorithm the
//! classification prescribes:
//!
//! * [`classify`] — the full decision procedure of the paper (Theorems
//!   4.2, 6.1, 8.1, 9.1, 10.5), with tripath witnesses attached;
//! * [`CqaEngine`] — classify once, answer `certain` on many databases;
//! * [`CqaSession`] — the other amortisation axis: load a database once,
//!   answer many queries, with per-query caches of the classification,
//!   solution set and component partition (`cqa batch` in the CLI);
//! * [`SharedSession`] — the owned, thread-safe variant of the same
//!   cache, built for the `cqa serve` session manager: many worker
//!   threads answer against one database, eviction-safe via `Arc`;
//! * re-exports of the underlying substrates: the relational model
//!   ([`cqa_model`]), queries ([`cqa_query`]), solvers ([`cqa_solvers`]:
//!   brute force, the greedy fixpoint `Cert_k`, `matching(q)`, the
//!   Theorem 10.5 combination), tripath machinery ([`cqa_tripath`]),
//!   SAT ([`cqa_sat`]) and the executable reductions
//!   ([`cqa_reductions`]).
//!
//! ## Quick start
//!
//! ```
//! use cqa::{classify, Complexity};
//! use cqa_query::parse_query;
//!
//! // The paper's q2: 2way-determined, admits a fork-tripath, hence
//! // coNP-complete (Theorem 9.1).
//! let q2 = parse_query("R(x u | x y) R(u y | x z)").unwrap();
//! assert_eq!(classify(&q2).complexity, Complexity::CoNpComplete);
//!
//! // The paper's q3: PTime, solved by the greedy fixpoint Cert₂.
//! let q3 = parse_query("R(x | y) R(y | z)").unwrap();
//! assert_eq!(classify(&q3).complexity, Complexity::PTimeCert2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod delta;
mod engine;
mod session;
mod shared;

pub use classify::{
    classify, classify_with, Classification, ClassificationRule, Complexity, Confidence,
};
pub use delta::{DeltaStats, QueryDeltaState};
pub use engine::{
    AnsweredBy, CancelledSolve, CertainAnswer, CqaEngine, EngineConfig, RoutePolicy, RoutingConfig,
};
pub use session::{CqaSession, SessionStats};
pub use shared::SharedSession;

// Substrate re-exports for downstream users of the facade crate.
pub use cqa_model as model;
pub use cqa_query as query;
pub use cqa_reductions as reductions;
pub use cqa_sat as sat;
pub use cqa_solvers as solvers;
pub use cqa_tripath as tripath;
