//! Owned, thread-safe query sessions — the server-side sibling of
//! [`CqaSession`](crate::CqaSession).
//!
//! [`CqaSession`](crate::CqaSession) *borrows* its database, which is
//! perfect for `cqa batch` (load, answer, exit) but rules out a
//! long-lived server: a session manager that loads and evicts databases
//! at runtime needs entries it can own, share across worker threads and
//! drop independently. [`SharedSession`] fills that gap:
//!
//! * it **owns** its database behind an [`Arc`], so a manager can evict
//!   the session while in-flight requests keep a live handle;
//! * `certain` takes `&self` — concurrent requests for *different*
//!   queries proceed without blocking each other, while concurrent first
//!   sights of the *same* query block on one [`OnceLock`] initialisation
//!   (exactly one classification / solution enumeration ever runs);
//! * per query it caches the classified engine, the enumerated solution
//!   set, and the solved [`CertainAnswer`] itself: the database is
//!   immutable for the session's lifetime, so the verdict is a pure
//!   function of the query and a repeat request costs a map lookup.
//!   (The component partition's views borrow the database, so the
//!   partition is rebuilt inside the one first-solve rather than stored
//!   — caching it in an owned session would make the type
//!   self-referential.)
//!
//! Verdicts are identical to [`CqaEngine::certain`] — the one solve per
//! query feeds the same solutions and the same routing decision into
//! the same solvers — which is what the `server_parity` differential
//! suite pins.
//!
//! ## Live updates
//!
//! A session's database is immutable, which is what makes the verdict
//! cache sound — so an *update* produces a **successor session**
//! ([`SharedSession::with_delta`]): the delta is applied to a clone of
//! the database, and every query already answered here is carried over
//! with its verdict *patched incrementally* (via
//! [`QueryDeltaState`](crate::QueryDeltaState) — untouched q-connected
//! components keep their verdicts, dirty ones re-solve warm or cold).
//! The predecessor stays fully consistent for in-flight holders; the
//! `cqa serve` manager swaps the successor in atomically, so a request
//! always sees either the whole old state or the whole new one, never a
//! half-applied hybrid. See `docs/DELTAS.md`.

use crate::delta::{DeltaStats, QueryDeltaState};
use crate::engine::{CancelledSolve, CertainAnswer, CqaEngine, EngineConfig};
use crate::session::SessionStats;
use cqa_model::{Database, DeltaReport, Fact, ModelError};
use cqa_query::Query;
use cqa_solvers::{CancelToken, SolutionSet};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A per-query cache slot. All fields are lazily initialised under
/// [`OnceLock`], so racing first requests for one query do the expensive
/// work exactly once; later requests read lock-free.
#[derive(Default)]
struct SharedEntry {
    engine: OnceLock<CqaEngine>,
    solutions: OnceLock<SolutionSet>,
    answer: OnceLock<CertainAnswer>,
}

/// An owned classify-once, analyse-once, answer-many handle on one
/// database, shareable across threads.
///
/// ```
/// use cqa::{EngineConfig, SharedSession};
/// use cqa_model::{Database, Fact, Signature};
/// use cqa_query::parse_query;
/// use std::sync::Arc;
///
/// let mut db = Database::new(Signature::new(2, 1).unwrap());
/// db.insert(Fact::from_names(["a", "b"])).unwrap();
/// db.insert(Fact::from_names(["b", "c"])).unwrap();
///
/// let session = SharedSession::new(Arc::new(db), EngineConfig::default());
/// let q3 = parse_query("R(x | y) R(y | z)").unwrap();
/// assert!(session.certain(&q3).certain);
/// assert!(session.certain(&q3).certain); // cached: no re-enumeration
/// assert_eq!(session.stats().cache_hits, 1);
/// ```
pub struct SharedSession {
    db: Arc<Database>,
    config: EngineConfig,
    entries: Mutex<HashMap<String, Arc<SharedEntry>>>,
    /// Incremental per-query caches, keyed like `entries`. Populated by
    /// [`SharedSession::with_delta`] on the successor it builds; drained
    /// from the predecessor (its verdict cache stays valid — the states
    /// are pure acceleration for the *next* delta).
    delta: Mutex<HashMap<String, QueryDeltaState>>,
    delta_stats: Mutex<DeltaStats>,
    queries: AtomicUsize,
    distinct: AtomicUsize,
    cache_hits: AtomicUsize,
}

impl SharedSession {
    /// A session owning `db`; every query first seen is classified with
    /// `config`.
    pub fn new(db: Arc<Database>, config: EngineConfig) -> SharedSession {
        SharedSession {
            db,
            config,
            entries: Mutex::new(HashMap::new()),
            delta: Mutex::new(HashMap::new()),
            delta_stats: Mutex::new(DeltaStats::default()),
            queries: AtomicUsize::new(0),
            distinct: AtomicUsize::new(0),
            cache_hits: AtomicUsize::new(0),
        }
    }

    /// The session's database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The configuration queries are classified and solved with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Approximate resident bytes of the session's database — the number
    /// the `cqa serve` memory budget accounts and evicts by. Cached
    /// per-query artefacts are small next to the fact store and are not
    /// counted.
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
    }

    /// Lifetime counters, in the same shape `cqa batch --stats` reports
    /// ([`SessionStats`]); `evictions` is always 0 here — whole-session
    /// eviction is the manager's job, per-query eviction the capped
    /// [`CqaSession`](crate::CqaSession)'s.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            queries: self.queries.load(Ordering::Relaxed),
            distinct_queries: self.distinct.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            evictions: 0,
        }
    }

    /// The cache slot for `query`, creating it (empty) on first sight.
    /// The map lock is held only for the lookup/insert, never while
    /// classifying or enumerating.
    fn entry(&self, query: &Query) -> Arc<SharedEntry> {
        let key = query.display();
        let mut entries = self.entries.lock().expect("session map lock poisoned");
        if let Some(entry) = entries.get(&key) {
            return Arc::clone(entry);
        }
        self.distinct.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(SharedEntry::default());
        entries.insert(key, Arc::clone(&entry));
        entry
    }

    /// Decide `db ⊨ certain(query)`, reusing (or building, on first
    /// sight) the cached classification, solution set *and verdict* for
    /// this query. Safe to call from many threads at once.
    ///
    /// Unlike the per-process [`CqaSession`](crate::CqaSession), the
    /// full [`CertainAnswer`] is cached, not just the preparation: the
    /// session owns an immutable database, so the verdict is a pure
    /// function of the query and re-solving on every repeat request
    /// would only re-derive the same answer (a long-lived server cannot
    /// afford that on budget-heavy shapes).
    pub fn certain(&self, query: &Query) -> CertainAnswer {
        let entry = self.entry(query);
        let hit = entry.answer.get().is_some();
        let answer = entry
            .answer
            .get_or_init(|| {
                let engine = entry
                    .engine
                    .get_or_init(|| CqaEngine::with_config(query.clone(), self.config));
                let solutions = entry
                    .solutions
                    .get_or_init(|| SolutionSet::enumerate(engine.query(), &self.db));
                let comps = engine.partition_for(&self.db, solutions);
                engine.certain_with_parts(&self.db, solutions, comps.as_deref())
            })
            .clone();
        self.queries.fetch_add(1, Ordering::Relaxed);
        if hit {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        answer
    }

    /// [`SharedSession::certain`] under a [`CancelToken`]: a cached
    /// verdict is returned immediately (nothing left to cancel), a first
    /// solve polls the token mid-fixpoint and returns `Err` with partial
    /// evidence when it fires.
    ///
    /// A cancelled run **never populates the verdict cache** — only a
    /// completed solve commits its answer, so a later retry (or a
    /// concurrent patient request) still runs and caches the real
    /// verdict. The classification and solution enumeration stay under
    /// their [`OnceLock`]s and are kept even when the solve is
    /// cancelled: they are pure preparation, and the retry reuses them.
    /// Racing deadline-carrying first requests for one query may each
    /// run the solve (unlike [`SharedSession::certain`], which
    /// single-flights it); the first to finish commits, and both return
    /// the same pure verdict.
    pub fn certain_cancellable(
        &self,
        query: &Query,
        token: &CancelToken,
    ) -> Result<CertainAnswer, CancelledSolve> {
        let entry = self.entry(query);
        if let Some(answer) = entry.answer.get() {
            self.queries.fetch_add(1, Ordering::Relaxed);
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(answer.clone());
        }
        let engine = entry
            .engine
            .get_or_init(|| CqaEngine::with_config(query.clone(), self.config));
        let solutions = entry
            .solutions
            .get_or_init(|| SolutionSet::enumerate(engine.query(), &self.db));
        let comps = engine.partition_for(&self.db, solutions);
        let answer =
            engine.certain_with_parts_token(&self.db, solutions, comps.as_deref(), token)?;
        let _ = entry.answer.set(answer.clone());
        self.queries.fetch_add(1, Ordering::Relaxed);
        Ok(answer)
    }

    /// Lifetime incremental-update counters (summed over this session and
    /// the predecessors it was derived from).
    pub fn delta_stats(&self) -> DeltaStats {
        *self.delta_stats.lock().expect("delta stats lock poisoned")
    }

    /// Apply a delta and return the **successor session**: a new
    /// [`SharedSession`] owning the post-delta database, with every query
    /// this session has already answered carried over — its verdict
    /// patched incrementally rather than re-solved from scratch.
    ///
    /// Per carried query (see [`QueryDeltaState`](crate::QueryDeltaState)):
    /// untouched q-connected components keep their verdicts verbatim;
    /// components in the dirty region re-solve — *warm* (antichain
    /// snapshot + touched-blocks worklist) on growth-only deltas, *cold*
    /// otherwise. coNP-complete queries carry nothing (their next request
    /// re-solves lazily), and queries whose first solve never completed
    /// are dropped. The incremental states themselves move to the
    /// successor, so a *chain* of updates keeps patching instead of
    /// rebuilding; this session keeps answering from its own (still
    /// valid) caches, it just can't accelerate a second `with_delta`.
    ///
    /// Observability counters (`queries`, `distinct_queries`,
    /// `cache_hits`, [`DeltaStats`]) carry over so a served database's
    /// stats stay monotone across updates.
    ///
    /// Errors (arity mismatch) leave this session untouched.
    pub fn with_delta(
        &self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<(SharedSession, DeltaReport), ModelError> {
        let mut db = (*self.db).clone();
        let report = db.apply_delta(inserts, retracts)?;
        let db = Arc::new(db);
        let mut step = DeltaStats {
            delta_applied: 1,
            ..DeltaStats::default()
        };
        // Drain our incremental states: they are chained onto the
        // successor (a state patched past the delta no longer describes
        // *our* database).
        let mut old_states =
            std::mem::take(&mut *self.delta.lock().expect("session delta lock poisoned"));
        let entries = self.entries.lock().expect("session map lock poisoned");
        let mut next_entries: HashMap<String, Arc<SharedEntry>> = HashMap::new();
        let mut next_states: HashMap<String, QueryDeltaState> = HashMap::new();
        for (key, entry) in entries.iter() {
            if entry.answer.get().is_none() {
                continue; // never fully answered: nothing worth carrying
            }
            let state = match old_states.remove(key) {
                Some(mut state) => {
                    let s = state.apply(&db, &report);
                    step.blocks_reseeded += s.blocks_reseeded;
                    step.verdicts_retained += s.verdicts_retained;
                    Some(state)
                }
                None => {
                    // First update for this query: convert the cached
                    // verdict into an incremental state by solving the
                    // post-delta database per component (cold once; every
                    // later delta patches).
                    let engine = entry
                        .engine
                        .get()
                        .expect("an answered entry always has its engine")
                        .clone();
                    QueryDeltaState::new(engine, &db)
                }
            };
            if let Some(state) = state {
                let fresh = SharedEntry::default();
                let _ = fresh.engine.set(state.engine().clone());
                let _ = fresh.answer.set(state.answer());
                next_entries.insert(key.clone(), Arc::new(fresh));
                next_states.insert(key.clone(), state);
            }
        }
        drop(entries);
        let mut stats = self.delta_stats();
        stats.absorb(&step);
        let next = SharedSession {
            db,
            config: self.config,
            entries: Mutex::new(next_entries),
            delta: Mutex::new(next_states),
            delta_stats: Mutex::new(stats),
            queries: AtomicUsize::new(self.queries.load(Ordering::Relaxed)),
            distinct: AtomicUsize::new(self.distinct.load(Ordering::Relaxed)),
            cache_hits: AtomicUsize::new(self.cache_hits.load(Ordering::Relaxed)),
        };
        Ok((next, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Fact, Signature};
    use cqa_query::examples;

    fn db2(rows: &[[&str; 2]]) -> Arc<Database> {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        Arc::new(db)
    }

    fn multi_component_db() -> Arc<Database> {
        db2(&[
            ["a", "b"],
            ["b", "c"],
            ["p", "q"],
            ["p", "x"],
            ["q", "r"],
            ["z", "z"],
        ])
    }

    #[test]
    fn shared_session_matches_cold_engine() {
        let db = multi_component_db();
        let session = SharedSession::new(Arc::clone(&db), EngineConfig::default());
        for q in [examples::q3(), examples::q4(), examples::q5()] {
            let cold = CqaEngine::new(q.clone()).certain(&db);
            let warm = session.certain(&q);
            assert_eq!(cold.certain, warm.certain, "{}", q.display());
            assert_eq!(cold.answered_by, warm.answered_by, "{}", q.display());
            // Repeat hits the cache with the same verdict.
            assert_eq!(session.certain(&q).certain, cold.certain);
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.distinct_queries, 3);
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn concurrent_same_query_enumerates_once() {
        let db = multi_component_db();
        let session = SharedSession::new(db, EngineConfig::default());
        let q3 = examples::q3();
        let verdicts = minipool::par_map(4, &[(); 16], |_| session.certain(&q3).certain);
        assert!(verdicts.iter().all(|&v| v));
        let stats = session.stats();
        assert_eq!(stats.queries, 16);
        assert_eq!(stats.distinct_queries, 1, "one entry, one enumeration");
        // Every call after the first prepared one is a hit; racing first
        // calls may miss the `hit` flag but never re-enumerate.
        assert!(stats.cache_hits >= 1);
    }

    #[test]
    fn cancelled_solve_never_populates_the_cache() {
        let db = multi_component_db();
        let session = SharedSession::new(db, EngineConfig::default());
        let q3 = examples::q3();
        let raised = CancelToken::new();
        raised.cancel();
        assert!(session.certain_cancellable(&q3, &raised).is_err());
        // The cancelled run committed nothing: the patient retry solves
        // and gets the real verdict, with zero cache hits so far.
        assert_eq!(session.stats().cache_hits, 0);
        let calm = CancelToken::new();
        let answer = session
            .certain_cancellable(&q3, &calm)
            .expect("a calm token cannot cancel");
        assert!(answer.certain);
        // And the completed solve did commit: the next call is a hit,
        // even under a raised token (a cached verdict has nothing left
        // to cancel).
        assert!(session.certain_cancellable(&q3, &raised).unwrap().certain);
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn with_delta_patches_cached_verdicts() {
        let db = db2(&[["a", "b"], ["p", "q"], ["p", "x"]]);
        let session = SharedSession::new(db, EngineConfig::default());
        let q3 = examples::q3();
        assert!(!session.certain(&q3).certain);

        // Growth delta completes the chain: the successor's cached
        // verdict flips without a from-scratch solve.
        let (s1, report) = session
            .with_delta(&[Fact::from_names(["b", "c"])], &[])
            .unwrap();
        assert!(report.growth_only());
        assert!(s1.certain(&q3).certain);
        assert_eq!(s1.delta_stats().delta_applied, 1);
        // The carried verdict is a cache hit, and predecessor counters
        // carried over (1 query + this hit).
        assert_eq!(s1.stats().queries, 2);
        assert!(s1.stats().cache_hits >= 1);
        // The predecessor still answers from its own, unchanged database.
        assert!(!session.certain(&q3).certain);

        // A retract chains off the successor's incremental state.
        let (s2, report) = s1.with_delta(&[], &[Fact::from_names(["b", "c"])]).unwrap();
        assert!(!report.growth_only());
        assert!(!s2.certain(&q3).certain);
        assert_eq!(s2.delta_stats().delta_applied, 2);
        assert!(s2.delta_stats().verdicts_retained > 0);

        // Differential: every successor agrees with a cold engine on its
        // own database.
        for s in [&s1, &s2] {
            let cold = CqaEngine::new(q3.clone()).certain(s.db());
            assert_eq!(s.certain(&q3).certain, cold.certain);
        }
    }

    #[test]
    fn with_delta_drops_unanswered_and_brute_force_queries() {
        let mut db = cqa_model::Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let session = SharedSession::new(Arc::new(db), EngineConfig::default());
        let q2 = examples::q2();
        let before = session.certain(&q2);

        let (next, _) = session
            .with_delta(&[Fact::from_names(["x", "y", "z", "w"])], &[])
            .unwrap();
        // The coNP query was not carried: the next request re-solves
        // against the new database (still correct, just not incremental).
        let after = next.certain(&q2);
        assert_eq!(
            after.certain,
            CqaEngine::new(q2.clone()).certain(next.db()).certain
        );
        assert_eq!(before.answered_by, after.answered_by);
    }

    #[test]
    fn with_delta_rejects_bad_arity_and_leaves_session_intact() {
        let db = db2(&[["a", "b"]]);
        let session = SharedSession::new(db, EngineConfig::default());
        let q3 = examples::q3();
        assert!(!session.certain(&q3).certain);
        let err = session.with_delta(&[Fact::from_names(["a", "b", "c"])], &[]);
        assert!(err.is_err());
        assert!(!session.certain(&q3).certain);
        assert_eq!(session.delta_stats().delta_applied, 0);
    }

    #[test]
    fn session_outlives_external_drop_of_the_map_slot() {
        // An "evicted" session (the manager dropped its Arc) keeps
        // answering for holders of the handle.
        let db = db2(&[["a", "b"], ["b", "c"]]);
        let session = Arc::new(SharedSession::new(db, EngineConfig::default()));
        let held = Arc::clone(&session);
        drop(session);
        assert!(held.certain(&examples::q3()).certain);
        assert!(held.approx_bytes() > 0);
    }
}
