//! Incremental re-answering across [`Database::apply_delta`]s.
//!
//! A [`QueryDeltaState`] is the per-query cache a live database keeps
//! between updates: the incremental solution set, the dynamic q-connected
//! partition, and one verdict per component — each verdict carrying the
//! [`CertKWarmState`] antichain snapshot its fixpoint ended in. After a
//! delta, only the *dirty region* is re-solved:
//!
//! * components the delta never touched keep their verdicts verbatim
//!   (their fact sets are literally identical — fact ids are stable under
//!   [`Database::apply_delta`], so an untouched component's view is
//!   bit-for-bit the view the cached verdict was computed on);
//! * components rebuilt from the dirty region are re-solved — *warm* when
//!   the delta is growth-only (`cqa_model::DeltaReport::growth_only`) and
//!   every lineage parent's snapshot is
//!   [`reusable`](CertKWarmState::reusable), seeding the fixpoint with the
//!   merged parent antichains and a worklist of just the touched blocks;
//!   *cold* otherwise (retractions make `Cert_k` non-monotone, so a stale
//!   antichain would be unsound).
//!
//! The database itself is **certain iff some component is**
//! (Proposition 10.6), so [`QueryDeltaState::answer`] synthesises a
//! [`CertainAnswer`] from the per-component verdicts without touching the
//! clean region at all. coNP-complete queries have no incremental story
//! (the brute force keeps no reusable evidence) — [`QueryDeltaState::new`]
//! returns `None` for them and callers fall back to a full re-solve.
//!
//! Every entry point here is deliberately *re-derivable*: the state is a
//! pure function of `(query, database)`, and the differential suites
//! (`crates/core/tests/delta_props.rs`, the `deltadiff` fuzz target)
//! compare it against a from-scratch recompute after every step.

use std::collections::HashMap;

use crate::classify::Complexity;
use crate::engine::{AnsweredBy, CertainAnswer, CqaEngine};
use cqa_model::{BlockId, Database, DeltaReport, FactId};
use cqa_solvers::{
    certain_combined_over, certk_view_snapshot, certk_view_warm, CertKStats, CertKWarmState,
    Component, DynamicComponents, IncrementalSolutions,
};

/// Counters for the incremental path, aggregated by sessions and servers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Deltas folded into this state ([`QueryDeltaState::apply`] calls).
    pub delta_applied: u64,
    /// Blocks seeded into warm-restart worklists (the dirty frontier the
    /// fixpoints actually started from, summed over warm re-solves).
    pub blocks_reseeded: u64,
    /// Component verdicts retained verbatim because their component was
    /// untouched by a delta.
    pub verdicts_retained: u64,
}

impl DeltaStats {
    /// Fold `other` into `self` (all counters are sums).
    pub fn absorb(&mut self, other: &DeltaStats) {
        self.delta_applied += other.delta_applied;
        self.blocks_reseeded += other.blocks_reseeded;
        self.verdicts_retained += other.verdicts_retained;
    }
}

/// A cached per-component verdict.
#[derive(Clone, Debug)]
struct CompVerdict {
    certain: bool,
    budget_exhausted: bool,
    stats: Option<CertKStats>,
    /// The antichain snapshot the component's fixpoint ended in; `None`
    /// for matching-decided components (Theorem 10.5 route), which keep
    /// no fixpoint evidence and always re-solve cold.
    warm: Option<CertKWarmState>,
}

/// Per-query incremental cache: solutions, partition and component
/// verdicts, patched in `O(dirty region)` per [`Database::apply_delta`].
///
/// The state does not own the database; callers must feed
/// [`QueryDeltaState::apply`] the post-delta database and the
/// [`DeltaReport`] of the *same* `apply_delta` call, in order. Skipping or
/// reordering reports desynchronises the cache (debug assertions in the
/// incremental solution index catch most misuse).
#[derive(Clone, Debug)]
pub struct QueryDeltaState {
    engine: CqaEngine,
    solutions: IncrementalSolutions,
    comps: DynamicComponents,
    verdicts: HashMap<u32, CompVerdict>,
    stats: DeltaStats,
}

impl QueryDeltaState {
    /// Can `engine`'s query be answered incrementally? `false` exactly for
    /// the coNP-complete class, whose brute-force search keeps no
    /// component evidence worth patching.
    pub fn supports(engine: &CqaEngine) -> bool {
        engine.classification().complexity != Complexity::CoNpComplete
    }

    /// Build the cache for `db` with a from-scratch solve of every
    /// component. Returns `None` when the class is unsupported
    /// ([`QueryDeltaState::supports`]).
    pub fn new(engine: CqaEngine, db: &Database) -> Option<QueryDeltaState> {
        if !QueryDeltaState::supports(&engine) {
            return None;
        }
        let solutions = IncrementalSolutions::new(engine.query(), db);
        let comps = DynamicComponents::new(db, solutions.solutions());
        let mut state = QueryDeltaState {
            engine,
            solutions,
            comps,
            verdicts: HashMap::new(),
            stats: DeltaStats::default(),
        };
        for id in state.comps.ids().collect::<Vec<_>>() {
            let v = state.solve_cold(db, id);
            state.verdicts.insert(id, v);
        }
        Some(state)
    }

    /// The engine (query, classification, config) this cache answers for.
    pub fn engine(&self) -> &CqaEngine {
        &self.engine
    }

    /// Lifetime counters for this state.
    pub fn stats(&self) -> DeltaStats {
        self.stats
    }

    /// Number of q-connected components currently tracked.
    pub fn components(&self) -> usize {
        self.comps.len()
    }

    /// Solve one component from scratch, per the classification.
    fn solve_cold(&self, db: &Database, id: u32) -> CompVerdict {
        let view = self.comps.view_of(db, id);
        let q = self.engine.query();
        let cfg = self.engine.config().certk;
        match self.engine.classification().complexity {
            Complexity::PTimeCombined => {
                let comp = [Component { view }];
                let res = certain_combined_over(q, &comp, self.solutions.solutions(), cfg);
                let v = &res.components[0];
                CompVerdict {
                    certain: v.certain,
                    budget_exhausted: v.budget_exhausted,
                    stats: v.stats,
                    warm: None,
                }
            }
            _ => {
                let (out, stats, snap) =
                    certk_view_snapshot(q, &view, self.solutions.solutions(), cfg);
                CompVerdict {
                    certain: out.is_certain(),
                    budget_exhausted: out == cqa_solvers::CertKOutcome::BudgetExhausted,
                    stats: Some(stats),
                    warm: Some(snap),
                }
            }
        }
    }

    /// Fold one applied delta into the cache. `db` must be the post-delta
    /// database and `report` the [`DeltaReport`] of that very
    /// [`Database::apply_delta`] call. Returns the counters for this one
    /// application (already absorbed into [`QueryDeltaState::stats`]).
    pub fn apply(&mut self, db: &Database, report: &DeltaReport) -> DeltaStats {
        let mut step = DeltaStats {
            delta_applied: 1,
            ..DeltaStats::default()
        };
        self.solutions.apply_delta(db, report);
        let creport = self.comps.apply(db, self.solutions.solutions(), report);
        step.verdicts_retained += creport.retained as u64;
        // Verdicts of dissolved components become warm-seed material for
        // their descendants (growth-only deltas), then die.
        let mut parents: HashMap<u32, CompVerdict> = HashMap::new();
        for c in &creport.dropped {
            if let Some(v) = self.verdicts.remove(c) {
                parents.insert(*c, v);
            }
        }
        let growth = report.growth_only();
        // Group the delta's facts and blocks by the component now holding
        // them, once — the per-component warm re-solves below must not
        // each rescan the whole report (a 1%-growth batch on a 10⁶-fact
        // database creates ~10⁴ components; per-component scans made the
        // batch path quadratic and slower than a cold recompute).
        let mut changed_by_comp: HashMap<u32, Vec<FactId>> = HashMap::new();
        let mut dirty_by_comp: HashMap<u32, Vec<BlockId>> = HashMap::new();
        if growth {
            for &f in &report.inserted {
                if let Some(c) = self.comps.comp_of_block(db.block_of(f)) {
                    changed_by_comp.entry(c).or_default().push(f);
                }
            }
            for &b in &report.touched {
                if let Some(c) = self.comps.comp_of_block(b) {
                    dirty_by_comp.entry(c).or_default().push(b);
                }
            }
        }
        for &id in &creport.created {
            let lineage = creport.lineage.get(&id).map(Vec::as_slice).unwrap_or(&[]);
            let warm_seed: Option<Vec<&CertKWarmState>> = if growth {
                lineage
                    .iter()
                    .map(|p| {
                        parents
                            .get(p)
                            .and_then(|v| v.warm.as_ref())
                            .filter(|w| w.reusable())
                    })
                    .collect()
            } else {
                None
            };
            let verdict = match warm_seed {
                Some(seeds) => {
                    let merged = CertKWarmState::merged(seeds);
                    let changed = changed_by_comp.remove(&id).unwrap_or_default();
                    let dirty = dirty_by_comp.remove(&id).unwrap_or_default();
                    step.blocks_reseeded += dirty.len() as u64;
                    let view = self.comps.view_of(db, id);
                    let (out, stats, snap) = certk_view_warm(
                        self.engine.query(),
                        &view,
                        self.solutions.solutions(),
                        self.engine.config().certk,
                        &merged,
                        &changed,
                        &dirty,
                    );
                    CompVerdict {
                        certain: out.is_certain(),
                        budget_exhausted: out == cqa_solvers::CertKOutcome::BudgetExhausted,
                        stats: Some(stats),
                        warm: Some(snap),
                    }
                }
                None => self.solve_cold(db, id),
            };
            self.verdicts.insert(id, verdict);
        }
        self.stats.absorb(&step);
        step
    }

    /// Synthesise the whole-database answer from the per-component
    /// verdicts: certain iff some component is (Proposition 10.6).
    pub fn answer(&self) -> CertainAnswer {
        let mut stats: Option<CertKStats> = None;
        for v in self.verdicts.values() {
            if let Some(s) = &v.stats {
                match &mut stats {
                    Some(acc) => acc.absorb(s),
                    None => stats = Some(*s),
                }
            }
        }
        CertainAnswer {
            certain: self.verdicts.values().any(|v| v.certain),
            answered_by: match self.engine.classification().complexity {
                Complexity::PTimeCombined => AnsweredBy::Combined,
                _ => AnsweredBy::ComponentCertK,
            },
            budget_exhausted: self.verdicts.values().any(|v| v.budget_exhausted),
            certk_stats: stats,
            components: Some(self.comps.len()),
            skipped_components: Some(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Fact, Signature};
    use cqa_query::examples;

    fn db2(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    fn f2(a: &str, b: &str) -> Fact {
        Fact::from_names([a, b])
    }

    /// Drive a script of deltas through one `QueryDeltaState`, checking
    /// the incremental verdict against a from-scratch engine solve after
    /// every step.
    fn check_script(engine: CqaEngine, mut db: Database, script: &[(Vec<Fact>, Vec<Fact>)]) {
        let mut state =
            QueryDeltaState::new(engine.clone(), &db).expect("PTime classes support deltas");
        assert_eq!(
            state.answer().certain,
            engine.certain(&db).certain,
            "initial verdict"
        );
        for (i, (ins, ret)) in script.iter().enumerate() {
            let report = db.apply_delta(ins, ret).unwrap();
            state.apply(&db, &report);
            let want = engine.certain(&db).certain;
            let got = state.answer().certain;
            assert_eq!(got, want, "step {i}: incremental vs recompute");
        }
    }

    #[test]
    fn q3_incremental_matches_recompute_over_mixed_script() {
        let engine = CqaEngine::new(examples::q3());
        let db = db2(&[["a", "b"], ["p", "q"], ["p", "x"]]);
        let script = vec![
            // Growth: completes the a->b->c chain (certain flips true).
            (vec![f2("b", "c")], vec![]),
            // Growth into an existing block (non-monotone direction).
            (vec![f2("a", "z")], vec![]),
            // Retract the chain head: certain flips back off.
            (vec![], vec![f2("a", "b")]),
            // Bridge the two regions.
            (vec![f2("x", "p")], vec![]),
            // Mixed step: insert and retract at once.
            (vec![f2("q", "r"), f2("r", "s")], vec![f2("p", "x")]),
        ];
        check_script(engine, db, script.as_slice());
    }

    #[test]
    fn q6_combined_incremental_matches_recompute() {
        let engine = CqaEngine::new(examples::q6());
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        for f in [["a", "b", "c"], ["c", "a", "b"]] {
            db.insert(Fact::from_names(f)).unwrap();
        }
        let f3 = |t: [&str; 3]| Fact::from_names(t);
        let script = vec![
            (vec![f3(["b", "c", "a"])], vec![]),
            (vec![], vec![f3(["c", "a", "b"])]),
            (vec![f3(["c", "a", "b"]), f3(["d", "d", "d"])], vec![]),
        ];
        check_script(engine, db, script.as_slice());
    }

    #[test]
    fn untouched_components_keep_their_verdicts() {
        let engine = CqaEngine::new(examples::q3());
        let mut db = db2(&[["a", "b"], ["b", "c"], ["p", "q"], ["x", "y"]]);
        let mut state = QueryDeltaState::new(engine.clone(), &db).unwrap();
        let comps_before = state.components();
        assert!(comps_before >= 3);
        // Touch only the {x, y} region.
        let report = db.apply_delta(&[f2("y", "z")], &[]).unwrap();
        let step = state.apply(&db, &report);
        // Every component but the touched one kept its verdict.
        assert_eq!(step.verdicts_retained as usize, comps_before - 1);
        assert_eq!(state.answer().certain, engine.certain(&db).certain);
    }

    #[test]
    fn conp_class_is_unsupported() {
        let engine = CqaEngine::new(examples::q2());
        assert!(!QueryDeltaState::supports(&engine));
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        assert!(QueryDeltaState::new(engine, &db).is_none());
    }

    #[test]
    fn growth_only_steps_take_the_warm_path() {
        let engine = CqaEngine::new(examples::q3());
        let mut db = db2(&[["a", "b"]]);
        let mut state = QueryDeltaState::new(engine.clone(), &db).unwrap();
        let report = db.apply_delta(&[f2("b", "c")], &[]).unwrap();
        assert!(report.growth_only());
        let step = state.apply(&db, &report);
        assert!(step.blocks_reseeded > 0, "warm restart seeds the frontier");
        assert!(state.answer().certain);

        // A retract forces the cold path: no reseeding is counted.
        let report = db.apply_delta(&[], &[f2("a", "b")]).unwrap();
        assert!(!report.growth_only());
        let step = state.apply(&db, &report);
        assert_eq!(step.blocks_reseeded, 0);
        assert_eq!(state.answer().certain, engine.certain(&db).certain);
    }
}
