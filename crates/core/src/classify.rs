//! The dichotomy classifier (Theorem 2.1, operationalised).
//!
//! Decision procedure for a two-atom query `q = A B`:
//!
//! 1. `q` equivalent to a one-atom query (Section 2) → **Trivial**
//!    (first-order, always PTime).
//! 2. Theorem 4.2's conditions (1) ∧ (2) → **coNP-complete** (hardness
//!    through `sjf(q)` and Proposition 4.1). A self-join-free query with
//!    condition (1) alone is already coNP-complete: condition (1) is the
//!    mutual-attack cycle of the two-atom self-join-free dichotomy, the
//!    very hardness Theorem 4.2 lifts to self-joins.
//! 3. ¬condition (1) → **PTime**, `certain(q) = Cert₂(q)` (Theorem 6.1).
//! 4. Otherwise `q` is a 2way-determined *self-join* query; the tripath
//!    search decides:
//!    * fork-tripath → **coNP-complete** (Theorem 9.1);
//!    * triangle-tripath, no fork → **PTime** via
//!      `Cert_k(q) ∨ ¬matching(q)` (Theorem 10.5), with `Cert_k` alone
//!      provably insufficient (Theorem 10.1);
//!    * no tripath → **PTime** via `Cert_k(q)` alone (Theorem 8.1).
//!
//! The tripath search is bounded, so 2way-determined classifications carry
//! a [`Confidence`]: `Proved` when the relevant searches completed inside
//! their budgets (or were settled by a found witness), `BoundedEvidence`
//! otherwise.

use cqa_query::conditions::{cond1, is_2way_determined, thm42_conp_hard, thm61_applies};
use cqa_query::Query;
use cqa_tripath::{search_tripaths, SearchConfig, SearchOutcome, Tripath};

/// The complexity classes of the dichotomy, refined by which algorithm
/// decides `certain(q)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Complexity {
    /// Equivalent to a one-atom query: `certain(q)` is first-order.
    Trivial,
    /// PTime; `certain(q) = Cert₂(q)` (Theorem 6.1).
    PTimeCert2,
    /// PTime; no tripath, `certain(q) = Cert_k(q)` (Theorem 8.1).
    PTimeCertK,
    /// PTime; triangle-tripath but no fork-tripath:
    /// `certain(q) = Cert_k(q) ∨ ¬matching(q)` (Theorem 10.5).
    PTimeCombined,
    /// coNP-complete (Theorem 4.2 or Theorem 9.1).
    CoNpComplete,
}

impl Complexity {
    /// Is `certain(q)` polynomial-time for this class?
    pub fn is_ptime(self) -> bool {
        self != Complexity::CoNpComplete
    }
}

/// How firmly the classification is established.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Confidence {
    /// Syntactic cases, or tripath searches that completed within budget
    /// (positive witnesses are always validated, hence always proved).
    Proved,
    /// A bounded tripath search found nothing but hit a budget; the
    /// classification is the best-supported answer, not a proof.
    BoundedEvidence,
}

/// Which rule of the decision procedure fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassificationRule {
    /// Section 2: equivalent to one atom.
    OneAtomEquivalent,
    /// Theorem 4.2 via `sjf(q)` hardness. Also fired directly by
    /// self-join-free queries satisfying condition (1), where the
    /// underlying hardness needs no lift.
    Theorem42,
    /// Theorem 6.1 (possibly after swapping the atoms).
    Theorem61,
    /// Theorem 8.1: 2way-determined, no tripath.
    Theorem81,
    /// Theorem 9.1: 2way-determined with a fork-tripath.
    Theorem91,
    /// Theorem 10.5: 2way-determined, triangle-tripath only.
    Theorem105,
}

/// Full classification result with provenance.
#[derive(Clone, Debug)]
pub struct Classification {
    /// The complexity class.
    pub complexity: Complexity,
    /// The rule that fired.
    pub rule: ClassificationRule,
    /// Proof status of the answer.
    pub confidence: Confidence,
    /// Fork-tripath witness, when one was found.
    pub fork_witness: Option<Tripath>,
    /// Triangle-tripath witness, when one was found.
    pub triangle_witness: Option<Tripath>,
}

impl Classification {
    fn syntactic(complexity: Complexity, rule: ClassificationRule) -> Classification {
        Classification {
            complexity,
            rule,
            confidence: Confidence::Proved,
            fork_witness: None,
            triangle_witness: None,
        }
    }
}

/// Classify `q` with default tripath-search budgets.
pub fn classify(q: &Query) -> Classification {
    classify_with(q, &SearchConfig::default())
}

/// Classify `q`, controlling the tripath search.
pub fn classify_with(q: &Query, cfg: &SearchConfig) -> Classification {
    if q.is_one_atom_equivalent() {
        return Classification::syntactic(
            Complexity::Trivial,
            ClassificationRule::OneAtomEquivalent,
        );
    }
    if thm42_conp_hard(q) {
        return Classification::syntactic(Complexity::CoNpComplete, ClassificationRule::Theorem42);
    }
    // Self-join-free queries are settled entirely inside Section 4: for
    // two atoms over distinct relations, condition (1) is exactly the
    // mutual-attack cycle of the self-join-free dichotomy, so condition
    // (1) alone gives coNP-hardness (this is the `sjf(q)` hardness that
    // Theorem 4.2 lifts to self-joins via Proposition 4.1, here needing
    // no lift). The tripath analysis of Sections 7-10 never applies: a
    // tripath's facts would have to instantiate both atoms at once,
    // which is impossible across distinct relation symbols.
    if !q.is_self_join() && cond1(q) {
        return Classification::syntactic(Complexity::CoNpComplete, ClassificationRule::Theorem42);
    }
    if thm61_applies(q) {
        return Classification::syntactic(Complexity::PTimeCert2, ClassificationRule::Theorem61);
    }
    debug_assert!(
        is_2way_determined(q) && q.is_self_join(),
        "classification cases must be exhaustive"
    );
    let SearchOutcome {
        fork,
        triangle,
        exhausted,
    } = search_tripaths(q, cfg);
    match (&fork, &triangle) {
        (Some(_), _) => Classification {
            complexity: Complexity::CoNpComplete,
            rule: ClassificationRule::Theorem91,
            confidence: Confidence::Proved, // witness validated
            fork_witness: fork,
            triangle_witness: triangle,
        },
        (None, Some(_)) => Classification {
            complexity: Complexity::PTimeCombined,
            rule: ClassificationRule::Theorem105,
            confidence: if exhausted {
                Confidence::BoundedEvidence
            } else {
                Confidence::Proved
            },
            fork_witness: None,
            triangle_witness: triangle,
        },
        (None, None) => Classification {
            complexity: Complexity::PTimeCertK,
            rule: ClassificationRule::Theorem81,
            confidence: if exhausted {
                Confidence::BoundedEvidence
            } else {
                Confidence::Proved
            },
            fork_witness: None,
            triangle_witness: None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::{examples, parse_query};

    #[test]
    fn paper_queries_classify_as_claimed() {
        let expected = [
            (
                "q1",
                Complexity::CoNpComplete,
                ClassificationRule::Theorem42,
            ),
            (
                "q2",
                Complexity::CoNpComplete,
                ClassificationRule::Theorem91,
            ),
            ("q3", Complexity::PTimeCert2, ClassificationRule::Theorem61),
            ("q4", Complexity::PTimeCert2, ClassificationRule::Theorem61),
            ("q5", Complexity::PTimeCertK, ClassificationRule::Theorem81),
            (
                "q6",
                Complexity::PTimeCombined,
                ClassificationRule::Theorem105,
            ),
            (
                "q7",
                Complexity::PTimeCombined,
                ClassificationRule::Theorem105,
            ),
        ];
        for ((name, q), (ename, ecx, erule)) in examples::all().into_iter().zip(expected) {
            assert_eq!(name, ename);
            let c = classify(&q);
            assert_eq!(c.complexity, ecx, "{name} misclassified");
            assert_eq!(c.rule, erule, "{name} wrong rule");
        }
    }

    #[test]
    fn trivial_queries() {
        for s in [
            "R(x | y) R(u | v)",
            "R(x | y) R(x | z)",
            "R(x | x) R(u | v)",
        ] {
            let q = parse_query(s).unwrap();
            let c = classify(&q);
            assert_eq!(c.complexity, Complexity::Trivial, "{s}");
            assert_eq!(c.confidence, Confidence::Proved);
        }
    }

    #[test]
    fn witnesses_attached_where_expected() {
        let c2 = classify(&examples::q2());
        assert!(c2.fork_witness.is_some());
        let c6 = classify(&examples::q6());
        assert!(c6.triangle_witness.is_some());
        assert!(c6.fork_witness.is_none());
        let c5 = classify(&examples::q5());
        assert!(c5.fork_witness.is_none());
        assert!(c5.triangle_witness.is_none());
        assert_eq!(c5.confidence, Confidence::Proved);
    }

    #[test]
    fn sjf_queries_never_reach_the_tripath_search() {
        // Both conditions of Theorem 4.2: hard with or without the lift.
        let q = parse_query("R1(x | z) R2(y | z)").unwrap();
        let c = classify(&q);
        assert_eq!(c.complexity, Complexity::CoNpComplete);
        assert_eq!(c.rule, ClassificationRule::Theorem42);
        // Condition (1) but not (2) — the self-join analogue would be
        // 2way-determined and head into the tripath search, but across
        // distinct relations the attack cycle alone settles hardness.
        let q = parse_query("R1(x | x u) R2(u | x x)").unwrap();
        assert!(!thm42_conp_hard(&q));
        assert!(cond1(&q));
        let c = classify(&q);
        assert_eq!(c.complexity, Complexity::CoNpComplete);
        assert_eq!(c.rule, ClassificationRule::Theorem42);
        assert_eq!(c.confidence, Confidence::Proved);
        assert!(c.fork_witness.is_none() && c.triangle_witness.is_none());
        // No attack cycle: Theorem 6.1 as before.
        let q = parse_query("R1(x | y) R2(y | z)").unwrap();
        let c = classify(&q);
        assert_eq!(c.complexity, Complexity::PTimeCert2);
        assert_eq!(c.rule, ClassificationRule::Theorem61);
    }

    #[test]
    fn ptime_predicate() {
        assert!(Complexity::Trivial.is_ptime());
        assert!(Complexity::PTimeCert2.is_ptime());
        assert!(Complexity::PTimeCertK.is_ptime());
        assert!(Complexity::PTimeCombined.is_ptime());
        assert!(!Complexity::CoNpComplete.is_ptime());
    }
}
