//! The high-level engine: classify once, answer `certain(q)` many times
//! with the algorithm the dichotomy prescribes.

use crate::classify::{classify_with, Classification, Complexity};
use cqa_model::Database;
use cqa_query::Query;
use cqa_solvers::{certain_brute_parallel, certain_combined, certk, BruteOutcome, CertKConfig};
use cqa_tripath::SearchConfig;

/// Which algorithm actually answered a [`CqaEngine::certain`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnsweredBy {
    /// Single-atom / trivial evaluation via the fixpoint seeds (`Cert₁`).
    Trivial,
    /// The greedy fixpoint `Cert_k`.
    CertK,
    /// The Theorem 10.5 combination (per-component `Cert_k` / `¬matching`).
    Combined,
    /// Exponential search (coNP-complete queries only).
    BruteForce,
}

/// An answer with provenance.
#[derive(Clone, Debug)]
pub struct CertainAnswer {
    /// Is `q` certain for the database?
    pub certain: bool,
    /// The algorithm that produced the answer.
    pub answered_by: AnsweredBy,
    /// `true` when a budget was exhausted; for PTime classes the answer is
    /// then a sound under-approximation ("certain" is still trustworthy,
    /// "not certain" may be a false negative); for coNP-complete queries it
    /// means the search was cut off.
    pub budget_exhausted: bool,
}

/// Tuning knobs for [`CqaEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Tripath search limits used at classification time.
    pub search: SearchConfig,
    /// `Cert_k` configuration for the PTime algorithms. Its `threads`
    /// field also caps the per-component fan-out of the brute-force
    /// solver, so it is the engine-wide parallelism knob.
    pub certk: CertKConfig,
    /// Node budget for the brute-force solver on coNP-complete queries.
    pub brute_budget: u64,
}

impl EngineConfig {
    /// This configuration with an explicit solver thread count (`1` =
    /// fully sequential; the default is the host's available parallelism).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.certk = self.certk.with_threads(threads);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            search: SearchConfig::default(),
            certk: CertKConfig::new(2),
            brute_budget: u64::MAX,
        }
    }
}

/// Classify-once, solve-many engine for one query.
///
/// ```
/// use cqa::{CqaEngine, Complexity};
/// use cqa_model::{Database, Fact, Signature};
///
/// let q = cqa_query::examples::q3();
/// let engine = CqaEngine::new(q);
/// assert_eq!(engine.classification().complexity, Complexity::PTimeCert2);
///
/// let mut db = Database::new(Signature::new(2, 1).unwrap());
/// db.insert(Fact::from_names(["a", "b"])).unwrap();
/// db.insert(Fact::from_names(["b", "c"])).unwrap();
/// assert!(engine.certain(&db).certain);
/// ```
#[derive(Clone, Debug)]
pub struct CqaEngine {
    query: Query,
    classification: Classification,
    config: EngineConfig,
}

impl CqaEngine {
    /// Build an engine with default budgets (classifies immediately).
    pub fn new(query: Query) -> CqaEngine {
        CqaEngine::with_config(query, EngineConfig::default())
    }

    /// Build an engine with explicit budgets.
    pub fn with_config(query: Query, config: EngineConfig) -> CqaEngine {
        let classification = classify_with(&query, &config.search);
        CqaEngine {
            query,
            classification,
            config,
        }
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The dichotomy classification (computed at construction).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// Decide `db ⊨ certain(q)` with the algorithm the classification
    /// prescribes.
    pub fn certain(&self, db: &Database) -> CertainAnswer {
        match self.classification.complexity {
            Complexity::Trivial | Complexity::PTimeCert2 | Complexity::PTimeCertK => {
                let out = certk(&self.query, db, self.config.certk);
                CertainAnswer {
                    certain: out.is_certain(),
                    answered_by: if self.classification.complexity == Complexity::Trivial {
                        AnsweredBy::Trivial
                    } else {
                        AnsweredBy::CertK
                    },
                    budget_exhausted: out == cqa_solvers::CertKOutcome::BudgetExhausted,
                }
            }
            Complexity::PTimeCombined => {
                let res = certain_combined(&self.query, db, self.config.certk);
                CertainAnswer {
                    certain: res.certain,
                    answered_by: AnsweredBy::Combined,
                    budget_exhausted: res.components.iter().any(|c| c.budget_exhausted),
                }
            }
            Complexity::CoNpComplete => {
                match certain_brute_parallel(
                    &self.query,
                    db,
                    self.config.brute_budget,
                    self.config.certk.threads,
                ) {
                    BruteOutcome::Certain => CertainAnswer {
                        certain: true,
                        answered_by: AnsweredBy::BruteForce,
                        budget_exhausted: false,
                    },
                    BruteOutcome::NotCertain(_) => CertainAnswer {
                        certain: false,
                        answered_by: AnsweredBy::BruteForce,
                        budget_exhausted: false,
                    },
                    BruteOutcome::BudgetExhausted => CertainAnswer {
                        certain: false,
                        answered_by: AnsweredBy::BruteForce,
                        budget_exhausted: true,
                    },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Fact, Signature};
    use cqa_query::examples;
    use cqa_solvers::certain_brute;

    fn db2(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn engine_routes_q3_to_certk() {
        let engine = CqaEngine::new(examples::q3());
        let ans = engine.certain(&db2(&[["a", "b"], ["b", "c"]]));
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::CertK);
    }

    #[test]
    fn engine_routes_q6_to_combined() {
        let engine = CqaEngine::new(examples::q6());
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        for f in [["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]] {
            db.insert(Fact::from_names(f)).unwrap();
        }
        let ans = engine.certain(&db);
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::Combined);
    }

    #[test]
    fn engine_routes_q2_to_brute_force() {
        let engine = CqaEngine::new(examples::q2());
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let ans = engine.certain(&db);
        assert_eq!(ans.answered_by, AnsweredBy::BruteForce);
        assert_eq!(ans.certain, certain_brute(engine.query(), &db));
    }

    #[test]
    fn engine_agrees_with_brute_on_small_q3_instances() {
        let engine = CqaEngine::new(examples::q3());
        let cases = [
            db2(&[["a", "b"], ["b", "c"]]),
            db2(&[["a", "b"], ["a", "x"], ["b", "c"]]),
            db2(&[["a", "a"]]),
            db2(&[["a", "b"]]),
        ];
        for db in &cases {
            assert_eq!(
                engine.certain(db).certain,
                certain_brute(engine.query(), db)
            );
        }
    }
}
