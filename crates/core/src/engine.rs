//! The high-level engine: classify once, answer `certain(q)` many times
//! with the algorithm the dichotomy prescribes.
//!
//! For the PTime `Cert_k` classes the engine additionally picks an
//! *evaluation route* per database: the literal whole-database fixpoint
//! (the small-n fast path) or the per-component fan-out of
//! [`cqa_solvers::certk_by_components`] — by Proposition 10.6 the
//! database is certain iff some q-connected component is, and `Cert_k` is
//! exact per component exactly when it is exact globally, so the two
//! routes agree whenever no node budget is exhausted (see
//! [`RoutingConfig`] for the finite-budget caveat). On large fragmented
//! databases (the million-fact
//! generated workloads have tens of thousands of tiny components) the
//! component route wins: each per-component fixpoint touches a small
//! local antichain instead of one global index, and components are
//! decided in parallel when [`CertKConfig::threads`] allows. See
//! [`RoutingConfig`].

use crate::classify::{classify_with, Classification, Complexity};
use cqa_model::Database;
use cqa_query::Query;
use cqa_solvers::components::{
    q_connected_components_if_fragmented, q_connected_components_with_solutions, Component,
};
use cqa_solvers::{
    certain_combined_over, certain_combined_over_cancellable, certk_by_components,
    certk_by_components_cancellable, certk_view_cancel_token, certk_with_stats, BruteOutcome,
    CancelToken, CertKConfig, CertKStats, CombinedResult, SolutionSet,
};
use cqa_tripath::SearchConfig;

/// Which algorithm actually answered a [`CqaEngine::certain`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AnsweredBy {
    /// Single-atom / trivial evaluation via the fixpoint seeds (`Cert₁`).
    Trivial,
    /// The greedy fixpoint `Cert_k` on the whole database.
    CertK,
    /// Per-component `Cert_k` fan-out — the large/fragmented-database
    /// route (verdict-identical to [`AnsweredBy::CertK`]).
    ComponentCertK,
    /// The Theorem 10.5 combination (per-component `Cert_k` / `¬matching`).
    Combined,
    /// Exponential search (coNP-complete queries only).
    BruteForce,
}

/// An answer with provenance.
#[derive(Clone, Debug)]
pub struct CertainAnswer {
    /// Is `q` certain for the database?
    pub certain: bool,
    /// The algorithm that produced the answer.
    pub answered_by: AnsweredBy,
    /// `true` when a budget was exhausted; for PTime classes the answer is
    /// then a sound under-approximation ("certain" is still trustworthy,
    /// "not certain" may be a false negative); for coNP-complete queries it
    /// means the search was cut off.
    pub budget_exhausted: bool,
    /// Aggregated `Cert_k` fixpoint statistics, when a fixpoint produced
    /// (part of) the answer. On the component routes the per-component
    /// counters are summed (`peak_members` takes the max); matching-decided
    /// components contribute nothing, and components skipped by the
    /// early exit contribute nothing either.
    pub certk_stats: Option<CertKStats>,
    /// Number of q-connected components in the partition (component routes
    /// only; includes skipped ones).
    pub components: Option<usize>,
    /// Components left undecided by the opt-in cancel-on-first-certain
    /// mode ([`EngineConfig::with_early_exit`]); component routes only,
    /// `Some(0)` when every component was decided. A non-zero count means
    /// the per-component *evidence* (and `certk_stats`) is partial — the
    /// verdict itself is unaffected (Proposition 10.6).
    pub skipped_components: Option<usize>,
}

/// Evidence from a solve a [`CancelToken`] stopped mid-run. Cancellation
/// only ever *withholds* a verdict — CQA verdicts are pure functions of
/// `(db, query)`, so rerunning the solve with a calmer token reproduces
/// the answer the cancelled run would have produced.
#[derive(Clone, Debug, Default)]
pub struct CancelledSolve {
    /// Partial `Cert_k` statistics accumulated before the cancel was
    /// observed (aggregated over components on the fan-out routes).
    /// `None` when the brute-force search was cancelled — it keeps no
    /// fixpoint counters.
    pub certk_stats: Option<CertKStats>,
}

/// Route selection for the PTime `Cert_k` classes
/// ([`Complexity::PTimeCert2`] / [`Complexity::PTimeCertK`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Decide per database: the component route on large, fragmented
    /// inputs (see [`RoutingConfig::min_facts`] /
    /// [`RoutingConfig::min_components`]), the literal fixpoint otherwise.
    Auto,
    /// Always the literal whole-database `Cert_k` (the small-n fast path).
    Literal,
    /// Always the per-component route.
    Component,
}

/// When should a PTime `Cert_k` query take the per-component route?
///
/// The two routes provably agree whenever no node budget is exhausted
/// (Proposition 10.6 + per-component exactness of `Cert_k`), so with the
/// effectively-unbounded default budget this is purely a performance
/// decision. Under a *finite* [`CertKConfig::node_budget`] each component
/// gets the full budget — the same convention `certain_combined` has
/// always used — so the component route can decide instances the literal
/// fixpoint exhausts on; both stay sound ("certain" is always
/// trustworthy) and exhaustion is reported via
/// [`CertainAnswer::budget_exhausted`]. Pin [`RoutePolicy::Literal`] or
/// [`RoutePolicy::Component`] when budget-exhaustion behaviour must not
/// depend on database shape.
/// `Trivial` queries always stay on the literal path under `Auto` (their
/// fixpoint is seeds-only and linear); Theorem 10.5
/// ([`Complexity::PTimeCombined`]) queries always use the component-based
/// combined solver regardless of this configuration, and coNP-complete
/// queries are unaffected.
#[derive(Clone, Copy, Debug)]
pub struct RoutingConfig {
    /// How to choose between the literal and component routes.
    pub policy: RoutePolicy,
    /// `Auto`: consider the component route only at or above this many
    /// facts (below it the partition bookkeeping outweighs the win).
    pub min_facts: usize,
    /// `Auto`: take the component route only when the partition yields at
    /// least this many q-connected components (an unfragmented database
    /// gains nothing from the detour).
    pub min_components: usize,
}

impl Default for RoutingConfig {
    fn default() -> RoutingConfig {
        RoutingConfig {
            policy: RoutePolicy::Auto,
            min_facts: 50_000,
            min_components: 4,
        }
    }
}

impl RoutingConfig {
    /// The default thresholds with an explicit policy.
    pub fn with_policy(policy: RoutePolicy) -> RoutingConfig {
        RoutingConfig {
            policy,
            ..RoutingConfig::default()
        }
    }
}

/// Tuning knobs for [`CqaEngine`].
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Tripath search limits used at classification time.
    pub search: SearchConfig,
    /// `Cert_k` configuration for the PTime algorithms. Its `threads`
    /// field also caps the per-component fan-out of the brute-force
    /// solver, so it is the engine-wide parallelism knob.
    pub certk: CertKConfig,
    /// Node budget for the brute-force solver on coNP-complete queries.
    pub brute_budget: u64,
    /// Literal-vs-component route selection for `Cert_k`-class queries.
    pub routing: RoutingConfig,
}

impl EngineConfig {
    /// This configuration with an explicit solver thread count (`1` =
    /// fully sequential; the default is the host's available parallelism).
    pub fn with_threads(mut self, threads: usize) -> EngineConfig {
        self.certk = self.certk.with_threads(threads);
        self
    }

    /// This configuration with an explicit [`RoutePolicy`] (default
    /// thresholds).
    pub fn with_route(mut self, policy: RoutePolicy) -> EngineConfig {
        self.routing = RoutingConfig {
            policy,
            ..self.routing
        };
        self
    }

    /// This configuration with cancel-on-first-certain toggled for the
    /// per-component `Cert_k` fan-out: once one component is found
    /// certain, the remaining components are skipped. The verdict is
    /// provably unchanged (Proposition 10.6) but the per-component
    /// evidence becomes partial — see
    /// [`CertainAnswer::skipped_components`] and
    /// [`cqa_solvers::CertKConfig::early_exit`]. Only the component route
    /// of the `Cert_k` classes is affected; the Theorem 10.5 combined
    /// solver and the brute force ignore it.
    pub fn with_early_exit(mut self, early_exit: bool) -> EngineConfig {
        self.certk = self.certk.with_early_exit(early_exit);
        self
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            search: SearchConfig::default(),
            certk: CertKConfig::new(2),
            brute_budget: u64::MAX,
            routing: RoutingConfig::default(),
        }
    }
}

/// Classify-once, solve-many engine for one query.
///
/// ```
/// use cqa::{CqaEngine, Complexity};
/// use cqa_model::{Database, Fact, Signature};
///
/// let q = cqa_query::examples::q3();
/// let engine = CqaEngine::new(q);
/// assert_eq!(engine.classification().complexity, Complexity::PTimeCert2);
///
/// let mut db = Database::new(Signature::new(2, 1).unwrap());
/// db.insert(Fact::from_names(["a", "b"])).unwrap();
/// db.insert(Fact::from_names(["b", "c"])).unwrap();
/// assert!(engine.certain(&db).certain);
/// ```
#[derive(Clone, Debug)]
pub struct CqaEngine {
    query: Query,
    classification: Classification,
    config: EngineConfig,
}

impl CqaEngine {
    /// Build an engine with default budgets (classifies immediately).
    pub fn new(query: Query) -> CqaEngine {
        CqaEngine::with_config(query, EngineConfig::default())
    }

    /// Build an engine with explicit budgets.
    pub fn with_config(query: Query, config: EngineConfig) -> CqaEngine {
        let classification = classify_with(&query, &config.search);
        CqaEngine {
            query,
            classification,
            config,
        }
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Open a query [`session`](crate::CqaSession) on `db`, seeded with
    /// this engine (classification already done): the database is analysed
    /// once per query — solution set, component partition — and every
    /// repeat of a query reuses the cached analysis. The session answers
    /// *other* queries too, classifying and caching each on first sight
    /// with this engine's [`EngineConfig`].
    pub fn session<'a>(&self, db: &'a Database) -> crate::CqaSession<'a> {
        crate::CqaSession::with_engine(self.clone(), db)
    }

    /// The engine's configuration.
    pub(crate) fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The dichotomy classification (computed at construction).
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// The routing decision for `db` on the `Cert_k` classes:
    /// `Some(partition)` when the component route should be taken. Under
    /// [`RoutePolicy::Auto`], trivial queries and small or unfragmented
    /// databases stay literal.
    fn route_components<'a>(
        &self,
        db: &'a Database,
        solutions: &SolutionSet,
    ) -> Option<Vec<Component<'a>>> {
        let routing = &self.config.routing;
        match routing.policy {
            RoutePolicy::Literal => None,
            RoutePolicy::Component => Some(q_connected_components_with_solutions(
                &self.query,
                db,
                solutions,
            )),
            RoutePolicy::Auto => {
                if self.classification.complexity == Complexity::Trivial
                    || db.len() < routing.min_facts
                {
                    return None;
                }
                // One union-find pass: views are only materialised when
                // the partition clears the fragmentation threshold.
                q_connected_components_if_fragmented(
                    &self.query,
                    db,
                    solutions,
                    routing.min_components,
                )
            }
        }
    }

    /// Decide `db ⊨ certain(q)` with the algorithm the classification
    /// prescribes.
    pub fn certain(&self, db: &Database) -> CertainAnswer {
        let solutions = SolutionSet::enumerate(&self.query, db);
        let comps = self.partition_for(db, &solutions);
        self.certain_with_parts(db, &solutions, comps.as_deref())
    }

    /// [`CqaEngine::certain`] under a [`CancelToken`]: the solver polls
    /// the token at bounded intervals (once per seeded fact, worklist
    /// block derivation, or brute-force budget tranche), so a token
    /// raised — or a deadline expiring — *mid-fixpoint* stops the solve
    /// within roughly one block's worth of work. `Err` carries the
    /// partial statistics accumulated before the cancel; a solve that
    /// completed before observing the cancel keeps its answer.
    pub fn certain_cancellable(
        &self,
        db: &Database,
        token: &CancelToken,
    ) -> Result<CertainAnswer, CancelledSolve> {
        let solutions = SolutionSet::enumerate(&self.query, db);
        let comps = self.partition_for(db, &solutions);
        self.certain_with_parts_token(db, &solutions, comps.as_deref(), token)
    }

    /// The component partition [`CqaEngine::certain_with_parts`] wants for
    /// `db`, if any: the routing decision for the `Cert_k` classes, the
    /// full q-connected partition for the Theorem 10.5 combination, and
    /// `None` for coNP-complete queries (the brute force partitions
    /// internally). [`CqaSession`](crate::CqaSession) computes this once
    /// per (query, database) and reuses it across calls.
    pub(crate) fn partition_for<'a>(
        &self,
        db: &'a Database,
        solutions: &SolutionSet,
    ) -> Option<Vec<Component<'a>>> {
        match self.classification.complexity {
            Complexity::Trivial | Complexity::PTimeCert2 | Complexity::PTimeCertK => {
                self.route_components(db, solutions)
            }
            Complexity::PTimeCombined => Some(q_connected_components_with_solutions(
                &self.query,
                db,
                solutions,
            )),
            Complexity::CoNpComplete => None,
        }
    }

    /// [`CqaEngine::certain`] with the expensive intermediates supplied by
    /// the caller: the enumerated solution set and the component partition
    /// from [`CqaEngine::partition_for`]. This is the session fast path —
    /// both inputs depend only on (query, database), so a
    /// [`CqaSession`](crate::CqaSession) computes them once and answers
    /// every subsequent call for the same query without re-enumerating.
    pub(crate) fn certain_with_parts(
        &self,
        db: &Database,
        solutions: &SolutionSet,
        comps: Option<&[Component<'_>]>,
    ) -> CertainAnswer {
        match self.classification.complexity {
            Complexity::Trivial | Complexity::PTimeCert2 | Complexity::PTimeCertK => {
                if let Some(comps) = comps {
                    let res = certk_by_components(&self.query, comps, solutions, self.config.certk);
                    answer_from_components(res, AnsweredBy::ComponentCertK)
                } else {
                    let (out, stats) =
                        certk_with_stats(&self.query, db, solutions, self.config.certk);
                    CertainAnswer {
                        certain: out.is_certain(),
                        answered_by: if self.classification.complexity == Complexity::Trivial {
                            AnsweredBy::Trivial
                        } else {
                            AnsweredBy::CertK
                        },
                        budget_exhausted: out == cqa_solvers::CertKOutcome::BudgetExhausted,
                        certk_stats: Some(stats),
                        components: None,
                        skipped_components: None,
                    }
                }
            }
            Complexity::PTimeCombined => {
                // A session always supplies the partition here; the
                // fallback recomputes it for direct callers.
                let owned;
                let comps = match comps {
                    Some(comps) => comps,
                    None => {
                        owned = q_connected_components_with_solutions(&self.query, db, solutions);
                        &owned
                    }
                };
                let res = certain_combined_over(&self.query, comps, solutions, self.config.certk);
                answer_from_components(res, AnsweredBy::Combined)
            }
            Complexity::CoNpComplete => {
                let outcome = cqa_solvers::brute::certain_brute_with_solutions_threads(
                    &self.query,
                    db,
                    solutions,
                    self.config.brute_budget,
                    self.config.certk.threads,
                );
                CertainAnswer {
                    certain: matches!(outcome, BruteOutcome::Certain),
                    answered_by: AnsweredBy::BruteForce,
                    budget_exhausted: matches!(outcome, BruteOutcome::BudgetExhausted),
                    certk_stats: None,
                    components: None,
                    skipped_components: None,
                }
            }
        }
    }

    /// [`CqaEngine::certain_with_parts`] under a [`CancelToken`] — the
    /// same dispatch, routed through the cancellable solver variants.
    /// Sessions use this to serve deadline-carrying requests from their
    /// cached intermediates.
    pub(crate) fn certain_with_parts_token(
        &self,
        db: &Database,
        solutions: &SolutionSet,
        comps: Option<&[Component<'_>]>,
        token: &CancelToken,
    ) -> Result<CertainAnswer, CancelledSolve> {
        match self.classification.complexity {
            Complexity::Trivial | Complexity::PTimeCert2 | Complexity::PTimeCertK => {
                if let Some(comps) = comps {
                    certk_by_components_cancellable(
                        &self.query,
                        comps,
                        solutions,
                        self.config.certk,
                        token,
                    )
                    .map(|res| answer_from_components(res, AnsweredBy::ComponentCertK))
                    .map_err(|partial| CancelledSolve {
                        certk_stats: Some(partial),
                    })
                } else {
                    certk_view_cancel_token(
                        &self.query,
                        &db.full_view(),
                        solutions,
                        self.config.certk,
                        token,
                    )
                    .map(|(out, stats)| CertainAnswer {
                        certain: out.is_certain(),
                        answered_by: if self.classification.complexity == Complexity::Trivial {
                            AnsweredBy::Trivial
                        } else {
                            AnsweredBy::CertK
                        },
                        budget_exhausted: out == cqa_solvers::CertKOutcome::BudgetExhausted,
                        certk_stats: Some(stats),
                        components: None,
                        skipped_components: None,
                    })
                    .map_err(|partial| CancelledSolve {
                        certk_stats: Some(partial),
                    })
                }
            }
            Complexity::PTimeCombined => {
                let owned;
                let comps = match comps {
                    Some(comps) => comps,
                    None => {
                        owned = q_connected_components_with_solutions(&self.query, db, solutions);
                        &owned
                    }
                };
                certain_combined_over_cancellable(
                    &self.query,
                    comps,
                    solutions,
                    self.config.certk,
                    token,
                )
                .map(|res| answer_from_components(res, AnsweredBy::Combined))
                .map_err(|partial| CancelledSolve {
                    certk_stats: Some(partial),
                })
            }
            Complexity::CoNpComplete => cqa_solvers::certain_brute_with_solutions_token(
                &self.query,
                db,
                solutions,
                self.config.brute_budget,
                self.config.certk.threads,
                token,
            )
            .map(|outcome| CertainAnswer {
                certain: matches!(outcome, BruteOutcome::Certain),
                answered_by: AnsweredBy::BruteForce,
                budget_exhausted: matches!(outcome, BruteOutcome::BudgetExhausted),
                certk_stats: None,
                components: None,
                skipped_components: None,
            })
            .ok_or(CancelledSolve { certk_stats: None }),
        }
    }
}

/// Fold a per-component result into a [`CertainAnswer`].
fn answer_from_components(res: CombinedResult, answered_by: AnsweredBy) -> CertainAnswer {
    CertainAnswer {
        certain: res.certain,
        answered_by,
        budget_exhausted: res.components.iter().any(|c| c.budget_exhausted),
        certk_stats: res.certk_stats(),
        components: Some(res.components.len() + res.skipped),
        skipped_components: Some(res.skipped),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::{Fact, Signature};
    use cqa_query::examples;
    use cqa_solvers::certain_brute;

    fn db2(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn engine_routes_q3_to_certk() {
        let engine = CqaEngine::new(examples::q3());
        let ans = engine.certain(&db2(&[["a", "b"], ["b", "c"]]));
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::CertK);
        assert!(ans.certk_stats.is_some());
        assert_eq!(ans.components, None);
    }

    #[test]
    fn engine_routes_q6_to_combined() {
        let engine = CqaEngine::new(examples::q6());
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        for f in [["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]] {
            db.insert(Fact::from_names(f)).unwrap();
        }
        let ans = engine.certain(&db);
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::Combined);
        assert_eq!(ans.components, Some(1));
    }

    #[test]
    fn engine_routes_q2_to_brute_force() {
        let engine = CqaEngine::new(examples::q2());
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let ans = engine.certain(&db);
        assert_eq!(ans.answered_by, AnsweredBy::BruteForce);
        assert_eq!(ans.certain, certain_brute(engine.query(), &db));
    }

    #[test]
    fn engine_agrees_with_brute_on_small_q3_instances() {
        let engine = CqaEngine::new(examples::q3());
        let cases = [
            db2(&[["a", "b"], ["b", "c"]]),
            db2(&[["a", "b"], ["a", "x"], ["b", "c"]]),
            db2(&[["a", "a"]]),
            db2(&[["a", "b"]]),
        ];
        for db in &cases {
            assert_eq!(
                engine.certain(db).certain,
                certain_brute(engine.query(), db)
            );
        }
    }

    /// A small multi-component q3 database: one certain chain, one
    /// falsifiable contested chain, one isolated self-loop.
    fn multi_component_db() -> Database {
        db2(&[
            ["a", "b"],
            ["b", "c"],
            ["p", "q"],
            ["p", "x"],
            ["q", "r"],
            ["z", "z"],
        ])
    }

    #[test]
    fn forced_component_route_agrees_with_literal() {
        let db = multi_component_db();
        let literal = CqaEngine::with_config(
            examples::q3(),
            EngineConfig::default().with_route(RoutePolicy::Literal),
        );
        let component = CqaEngine::with_config(
            examples::q3(),
            EngineConfig::default().with_route(RoutePolicy::Component),
        );
        let la = literal.certain(&db);
        let ca = component.certain(&db);
        assert_eq!(la.answered_by, AnsweredBy::CertK);
        assert_eq!(ca.answered_by, AnsweredBy::ComponentCertK);
        assert_eq!(la.certain, ca.certain);
        assert_eq!(ca.components, Some(3));
        assert!(ca.certk_stats.is_some());
        assert_eq!(la.certain, certain_brute(literal.query(), &db));
    }

    #[test]
    fn auto_route_takes_component_path_on_fragmented_databases() {
        // Lower the thresholds so the small test instance counts as
        // "large and fragmented".
        let mut config = EngineConfig::default();
        config.routing.min_facts = 4;
        config.routing.min_components = 2;
        let engine = CqaEngine::with_config(examples::q3(), config);
        let ans = engine.certain(&multi_component_db());
        assert_eq!(ans.answered_by, AnsweredBy::ComponentCertK);
        assert!(ans.certain);

        // Below the fact threshold the literal path answers.
        let small = engine.certain(&db2(&[["a", "b"], ["b", "c"]]));
        assert_eq!(small.answered_by, AnsweredBy::CertK);

        // Above the fact threshold but unfragmented: literal too.
        let mut config = EngineConfig::default();
        config.routing.min_facts = 2;
        config.routing.min_components = 2;
        let engine = CqaEngine::with_config(examples::q3(), config);
        let chain = engine.certain(&db2(&[["a", "b"], ["b", "c"], ["c", "d"]]));
        assert_eq!(chain.answered_by, AnsweredBy::CertK);
    }

    #[test]
    fn cancellable_engine_matches_certain_on_every_route() {
        // One query per dispatch arm: q3 (Cert_k literal + component),
        // q6 (combined), q2 (brute force).
        let calm = CancelToken::new();
        let raised = CancelToken::new();
        raised.cancel();

        let q3 = CqaEngine::new(examples::q3());
        let db = multi_component_db();
        let want = q3.certain(&db);
        let got = q3
            .certain_cancellable(&db, &calm)
            .expect("a calm token cannot cancel");
        assert_eq!(format!("{want:?}"), format!("{got:?}"));
        let cancelled = q3.certain_cancellable(&db, &raised).unwrap_err();
        assert!(cancelled.certk_stats.is_some(), "fixpoint evidence");

        // Forced component route.
        let routed = CqaEngine::with_config(
            examples::q3(),
            EngineConfig::default().with_route(RoutePolicy::Component),
        );
        let want = routed.certain(&db);
        let got = routed.certain_cancellable(&db, &calm).unwrap();
        assert_eq!(format!("{want:?}"), format!("{got:?}"));
        assert_eq!(got.answered_by, AnsweredBy::ComponentCertK);
        assert!(routed.certain_cancellable(&db, &raised).is_err());

        let q6 = CqaEngine::new(examples::q6());
        let mut db6 = Database::new(Signature::new(3, 1).unwrap());
        for f in [["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]] {
            db6.insert(Fact::from_names(f)).unwrap();
        }
        let want = q6.certain(&db6);
        let got = q6.certain_cancellable(&db6, &calm).unwrap();
        assert_eq!(format!("{want:?}"), format!("{got:?}"));
        assert!(q6.certain_cancellable(&db6, &raised).is_err());

        let q2 = CqaEngine::new(examples::q2());
        let mut db4 = Database::new(Signature::new(4, 2).unwrap());
        db4.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db4.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let want = q2.certain(&db4);
        let got = q2.certain_cancellable(&db4, &calm).unwrap();
        assert_eq!(want.certain, got.certain);
        assert_eq!(got.answered_by, AnsweredBy::BruteForce);
        let cancelled = q2.certain_cancellable(&db4, &raised).unwrap_err();
        assert!(cancelled.certk_stats.is_none(), "brute keeps no counters");
    }

    #[test]
    fn auto_route_never_moves_trivial_queries() {
        // q4 = R(x|y) R(x|z) is answered by its seeds; even a permissive
        // Auto config keeps it on the literal path.
        let mut config = EngineConfig::default();
        config.routing.min_facts = 1;
        config.routing.min_components = 1;
        let engine = CqaEngine::with_config(examples::q4(), config);
        if engine.classification().complexity == Complexity::Trivial {
            let ans = engine.certain(&db2(&[["a", "b"], ["c", "d"]]));
            assert_eq!(ans.answered_by, AnsweredBy::Trivial);
        }
    }
}
