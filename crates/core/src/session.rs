//! Batch query sessions: load a database once, answer many queries.
//!
//! Every [`CqaEngine::certain`] call re-derives the expensive
//! intermediates — the hash-joined [`SolutionSet`] and the q-connected
//! component partition — even when the same query is asked against the
//! same database again. For one-shot CLI use that is fine; for query
//! traffic against a long-lived database (the ROADMAP's north star) it
//! wastes the dominant share of the solve. A [`CqaSession`] borrows a
//! database and keeps a per-query cache:
//!
//! * **classification** — each distinct query is classified once
//!   (tripath search is milliseconds for fork-heavy queries);
//! * **solution set** — enumerated once per (query, database);
//! * **component partition** — the routing decision and its copy-free
//!   [`Component`] views, built once and reused.
//!
//! Cache keys are the *normalised* query text ([`Query::display`]), so
//! `R(x|y) R(y|z)` and `R(x | y)  R(y | z)` share an entry. The cache is
//! correct because a session's database is immutable for the session's
//! lifetime (enforced by the shared borrow) and both cached artefacts are
//! pure functions of (query, database).
//!
//! The CLI exposes sessions as `cqa batch <db> <queries-file>`: the fact
//! file is streamed once, then each query line is answered in order — the
//! amortisation the `batch_amortization` bench and `BASELINES.md` (PR 5)
//! quantify against N cold invocations.

use crate::engine::{CertainAnswer, CqaEngine, EngineConfig};
use cqa_model::Database;
use cqa_query::Query;
use cqa_solvers::components::Component;
use cqa_solvers::SolutionSet;
use std::collections::HashMap;

/// Aggregate counters of a [`CqaSession`]'s lifetime, for `--stats`
/// summaries and cache-effectiveness tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `certain` calls answered.
    pub queries: usize,
    /// Distinct queries seen (cache entries; keyed by normalised text).
    pub distinct_queries: usize,
    /// Calls that reused a fully prepared entry (classification +
    /// solutions + partition all cached). The first call for each
    /// distinct query is never a hit.
    pub cache_hits: usize,
}

/// A per-query cache entry: the classified engine plus, after the first
/// `certain` call, the database analysis it needs.
struct SessionEntry<'a> {
    engine: CqaEngine,
    prepared: Option<Prepared<'a>>,
}

/// The (query, database)-dependent intermediates worth keeping.
struct Prepared<'a> {
    solutions: SolutionSet,
    /// The component partition [`CqaEngine`] would compute for this query
    /// and database (`None` = the literal route, nothing to cache).
    components: Option<Vec<Component<'a>>>,
}

/// A classify-once, analyse-once, answer-many handle on one database.
///
/// ```
/// use cqa::{CqaSession, EngineConfig};
/// use cqa_model::{Database, Fact, Signature};
/// use cqa_query::parse_query;
///
/// let mut db = Database::new(Signature::new(2, 1).unwrap());
/// db.insert(Fact::from_names(["a", "b"])).unwrap();
/// db.insert(Fact::from_names(["b", "c"])).unwrap();
///
/// let mut session = CqaSession::new(&db, EngineConfig::default());
/// let q3 = parse_query("R(x | y) R(y | z)").unwrap();
/// assert!(session.certain(&q3).certain);
/// assert!(session.certain(&q3).certain); // cached: no re-enumeration
/// assert_eq!(session.stats().cache_hits, 1);
/// ```
pub struct CqaSession<'a> {
    db: &'a Database,
    config: EngineConfig,
    entries: HashMap<String, SessionEntry<'a>>,
    stats: SessionStats,
}

impl<'a> CqaSession<'a> {
    /// A session on `db`; every query first seen by the session is
    /// classified with `config`.
    pub fn new(db: &'a Database, config: EngineConfig) -> CqaSession<'a> {
        CqaSession {
            db,
            config,
            entries: HashMap::new(),
            stats: SessionStats::default(),
        }
    }

    /// A session seeded with an already-classified engine (see
    /// [`CqaEngine::session`]); the engine's configuration becomes the
    /// session default for queries seen later.
    pub fn with_engine(engine: CqaEngine, db: &'a Database) -> CqaSession<'a> {
        let mut session = CqaSession::new(db, *engine.config());
        let key = engine.query().display();
        session.entries.insert(
            key,
            SessionEntry {
                engine,
                prepared: None,
            },
        );
        session.stats.distinct_queries = 1;
        session
    }

    /// The session's database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// Lifetime counters (queries answered, cache hits).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The engine cached for `query`, classifying and caching it first if
    /// this is the session's first sight of it.
    pub fn engine(&mut self, query: &Query) -> &CqaEngine {
        &self.entry(query).engine
    }

    fn entry(&mut self, query: &Query) -> &mut SessionEntry<'a> {
        let key = query.display();
        let config = self.config;
        let entry = self.entries.entry(key).or_insert_with(|| SessionEntry {
            engine: CqaEngine::with_config(query.clone(), config),
            prepared: None,
        });
        entry
    }

    /// Decide `db ⊨ certain(query)`, reusing (or building, on first
    /// sight) the cached classification, solution set and component
    /// partition for this query.
    pub fn certain(&mut self, query: &Query) -> CertainAnswer {
        let db = self.db;
        let entry = self.entry(query);
        let hit = entry.prepared.is_some();
        if !hit {
            let solutions = SolutionSet::enumerate(entry.engine.query(), db);
            let components = entry.engine.partition_for(db, &solutions);
            entry.prepared = Some(Prepared {
                solutions,
                components,
            });
        }
        let prepared = entry.prepared.as_ref().expect("prepared just above");
        let answer = entry.engine.certain_with_parts(
            db,
            &prepared.solutions,
            prepared.components.as_deref(),
        );
        self.stats.queries += 1;
        self.stats.cache_hits += hit as usize;
        self.stats.distinct_queries = self.entries.len();
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnsweredBy, Complexity, RoutePolicy};
    use cqa_model::{Fact, Signature};
    use cqa_query::{examples, parse_query};
    use cqa_solvers::certain_brute;

    fn db2(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    fn multi_component_db() -> Database {
        db2(&[
            ["a", "b"],
            ["b", "c"],
            ["p", "q"],
            ["p", "x"],
            ["q", "r"],
            ["z", "z"],
        ])
    }

    #[test]
    fn session_answers_match_cold_engine_answers() {
        let db = multi_component_db();
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let queries = [examples::q3(), examples::q4(), examples::q5()];
        for q in &queries {
            let cold = CqaEngine::new(q.clone()).certain(&db);
            let warm = session.certain(q);
            assert_eq!(cold.certain, warm.certain, "{}", q.display());
            assert_eq!(cold.answered_by, warm.answered_by, "{}", q.display());
            assert_eq!(cold.certain, certain_brute(q, &db), "{}", q.display());
        }
        // Second pass: all hits, same answers.
        for q in &queries {
            let cold = CqaEngine::new(q.clone()).certain(&db);
            assert_eq!(session.certain(q).certain, cold.certain);
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.distinct_queries, 3);
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn normalised_query_text_shares_a_cache_entry() {
        let db = db2(&[["a", "b"], ["b", "c"]]);
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let spaced = parse_query("R(x | y) R(y | z)").unwrap();
        let dense = parse_query("R(x|y) R(y|z)").unwrap();
        assert!(session.certain(&spaced).certain);
        assert!(session.certain(&dense).certain);
        let stats = session.stats();
        assert_eq!(stats.distinct_queries, 1, "normalised text is the key");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn engine_seeded_session_reuses_the_engine() {
        let db = multi_component_db();
        let engine = CqaEngine::with_config(
            examples::q3(),
            EngineConfig::default().with_route(RoutePolicy::Component),
        );
        let mut session = engine.session(&db);
        let ans = session.certain(engine.query());
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::ComponentCertK);
        assert_eq!(session.stats().distinct_queries, 1);
        // The seeded entry counts as distinct but its first call still
        // has to analyse the database (no hit).
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.certain(engine.query()).certain, ans.certain);
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn session_serves_conp_queries_via_brute_force() {
        let q2 = examples::q2();
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let engine = CqaEngine::new(q2.clone());
        assert_eq!(engine.classification().complexity, Complexity::CoNpComplete);
        let warm = session.certain(&q2);
        assert_eq!(warm.answered_by, AnsweredBy::BruteForce);
        assert_eq!(warm.certain, engine.certain(&db).certain);
        // Cached solutions serve the repeat.
        assert_eq!(session.certain(&q2).certain, warm.certain);
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn early_exit_session_keeps_the_verdict() {
        let db = multi_component_db();
        // threads = 1 makes the skip count deterministic (the first
        // component is certain, so the sequential fan-out must skip the
        // rest); under free scheduling tiny components could all finish
        // before any worker sees the cancel flag.
        let mut config = EngineConfig::default()
            .with_early_exit(true)
            .with_threads(1);
        config.routing.min_facts = 4;
        config.routing.min_components = 2;
        let mut deterministic_cfg = config.with_early_exit(false);
        deterministic_cfg.routing = config.routing;
        let mut eager = CqaSession::new(&db, config);
        let mut det = CqaSession::new(&db, deterministic_cfg);
        let q3 = examples::q3();
        let e = eager.certain(&q3);
        let d = det.certain(&q3);
        assert_eq!(e.certain, d.certain);
        assert_eq!(e.answered_by, AnsweredBy::ComponentCertK);
        assert_eq!(e.components, d.components, "partition size is provenance");
        assert_eq!(d.skipped_components, Some(0));
        assert!(e.skipped_components.unwrap() > 0, "early exit skipped work");
    }
}
