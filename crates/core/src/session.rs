//! Batch query sessions: load a database once, answer many queries.
//!
//! Every [`CqaEngine::certain`] call re-derives the expensive
//! intermediates — the hash-joined [`SolutionSet`] and the q-connected
//! component partition — even when the same query is asked against the
//! same database again. For one-shot CLI use that is fine; for query
//! traffic against a long-lived database (the ROADMAP's north star) it
//! wastes the dominant share of the solve. A [`CqaSession`] borrows a
//! database and keeps a per-query cache:
//!
//! * **classification** — each distinct query is classified once
//!   (tripath search is milliseconds for fork-heavy queries);
//! * **solution set** — enumerated once per (query, database);
//! * **component partition** — the routing decision and its copy-free
//!   [`Component`] views, built once and reused.
//!
//! Cache keys are the *normalised* query text ([`Query::display`]), so
//! `R(x|y) R(y|z)` and `R(x | y)  R(y | z)` share an entry. The cache is
//! correct because a session's database is immutable for the session's
//! lifetime (enforced by the shared borrow) and both cached artefacts are
//! pure functions of (query, database).
//!
//! The CLI exposes sessions as `cqa batch <db> <queries-file>`: the fact
//! file is streamed once, then each query line is answered in order — the
//! amortisation the `batch_amortization` bench and `BASELINES.md` (PR 5)
//! quantify against N cold invocations.

use crate::engine::{CertainAnswer, CqaEngine, EngineConfig};
use cqa_model::Database;
use cqa_query::Query;
use cqa_solvers::components::Component;
use cqa_solvers::SolutionSet;
use std::collections::HashMap;

/// Aggregate counters of a [`CqaSession`]'s lifetime, for `--stats`
/// summaries and cache-effectiveness tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// `certain` calls answered.
    pub queries: usize,
    /// Distinct queries seen over the session's lifetime (cache entries
    /// ever created; keyed by normalised text). Monotone — an entry that
    /// is evicted and later re-created counts twice.
    pub distinct_queries: usize,
    /// Calls that reused a fully prepared entry (classification +
    /// solutions + partition all cached). The first call for each
    /// distinct query is never a hit.
    pub cache_hits: usize,
    /// Entries dropped by the LRU cap ([`CqaSession::with_capacity`]);
    /// `0` for uncapped sessions.
    pub evictions: usize,
}

/// A per-query cache entry: the classified engine plus, after the first
/// `certain` call, the database analysis it needs.
struct SessionEntry<'a> {
    engine: CqaEngine,
    prepared: Option<Prepared<'a>>,
    /// Logical timestamp of the entry's last use, for LRU eviction.
    last_used: u64,
}

/// The (query, database)-dependent intermediates worth keeping.
struct Prepared<'a> {
    solutions: SolutionSet,
    /// The component partition [`CqaEngine`] would compute for this query
    /// and database (`None` = the literal route, nothing to cache).
    components: Option<Vec<Component<'a>>>,
}

/// A classify-once, analyse-once, answer-many handle on one database.
///
/// ```
/// use cqa::{CqaSession, EngineConfig};
/// use cqa_model::{Database, Fact, Signature};
/// use cqa_query::parse_query;
///
/// let mut db = Database::new(Signature::new(2, 1).unwrap());
/// db.insert(Fact::from_names(["a", "b"])).unwrap();
/// db.insert(Fact::from_names(["b", "c"])).unwrap();
///
/// let mut session = CqaSession::new(&db, EngineConfig::default());
/// let q3 = parse_query("R(x | y) R(y | z)").unwrap();
/// assert!(session.certain(&q3).certain);
/// assert!(session.certain(&q3).certain); // cached: no re-enumeration
/// assert_eq!(session.stats().cache_hits, 1);
/// ```
pub struct CqaSession<'a> {
    db: &'a Database,
    config: EngineConfig,
    entries: HashMap<String, SessionEntry<'a>>,
    stats: SessionStats,
    /// Cap on live cache entries (`None` = unbounded); exceeding it
    /// evicts the least-recently-used entry.
    max_entries: Option<usize>,
    /// Logical clock driving the LRU order.
    clock: u64,
}

impl<'a> CqaSession<'a> {
    /// A session on `db`; every query first seen by the session is
    /// classified with `config`.
    pub fn new(db: &'a Database, config: EngineConfig) -> CqaSession<'a> {
        CqaSession {
            db,
            config,
            entries: HashMap::new(),
            stats: SessionStats::default(),
            max_entries: None,
            clock: 0,
        }
    }

    /// A session whose per-query cache keeps at most `max_entries` live
    /// entries (at least 1), evicting least-recently-used beyond that —
    /// the bounded-memory variant a long-lived server wants when query
    /// traffic has unbounded variety. Evictions are counted in
    /// [`SessionStats::evictions`]; an evicted query seen again is simply
    /// re-classified and re-prepared (correctness is unaffected).
    pub fn with_capacity(
        db: &'a Database,
        config: EngineConfig,
        max_entries: usize,
    ) -> CqaSession<'a> {
        let mut session = CqaSession::new(db, config);
        session.max_entries = Some(max_entries.max(1));
        session
    }

    /// A session seeded with an already-classified engine (see
    /// [`CqaEngine::session`]); the engine's configuration becomes the
    /// session default for queries seen later.
    pub fn with_engine(engine: CqaEngine, db: &'a Database) -> CqaSession<'a> {
        let mut session = CqaSession::new(db, *engine.config());
        let key = engine.query().display();
        session.entries.insert(
            key,
            SessionEntry {
                engine,
                prepared: None,
                last_used: 0,
            },
        );
        session.stats.distinct_queries = 1;
        session
    }

    /// The session's database.
    pub fn db(&self) -> &'a Database {
        self.db
    }

    /// Lifetime counters (queries answered, cache hits).
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// The engine cached for `query`, classifying and caching it first if
    /// this is the session's first sight of it.
    pub fn engine(&mut self, query: &Query) -> &CqaEngine {
        &self.entry(query).engine
    }

    fn entry(&mut self, query: &Query) -> &mut SessionEntry<'a> {
        let key = query.display();
        self.clock += 1;
        let now = self.clock;
        if !self.entries.contains_key(&key) {
            if let Some(cap) = self.max_entries {
                while self.entries.len() >= cap {
                    let lru = self
                        .entries
                        .iter()
                        .min_by_key(|(_, e)| e.last_used)
                        .map(|(k, _)| k.clone());
                    match lru {
                        Some(k) => {
                            self.entries.remove(&k);
                            self.stats.evictions += 1;
                        }
                        None => break,
                    }
                }
            }
            self.entries.insert(
                key.clone(),
                SessionEntry {
                    engine: CqaEngine::with_config(query.clone(), self.config),
                    prepared: None,
                    last_used: now,
                },
            );
            self.stats.distinct_queries += 1;
        }
        let entry = self.entries.get_mut(&key).expect("inserted just above");
        entry.last_used = now;
        entry
    }

    /// Decide `db ⊨ certain(query)`, reusing (or building, on first
    /// sight) the cached classification, solution set and component
    /// partition for this query.
    pub fn certain(&mut self, query: &Query) -> CertainAnswer {
        let db = self.db;
        let entry = self.entry(query);
        let hit = entry.prepared.is_some();
        if !hit {
            let solutions = SolutionSet::enumerate(entry.engine.query(), db);
            let components = entry.engine.partition_for(db, &solutions);
            entry.prepared = Some(Prepared {
                solutions,
                components,
            });
        }
        let prepared = entry.prepared.as_ref().expect("prepared just above");
        let answer = entry.engine.certain_with_parts(
            db,
            &prepared.solutions,
            prepared.components.as_deref(),
        );
        self.stats.queries += 1;
        self.stats.cache_hits += hit as usize;
        answer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AnsweredBy, Complexity, RoutePolicy};
    use cqa_model::{Fact, Signature};
    use cqa_query::{examples, parse_query};
    use cqa_solvers::certain_brute;

    fn db2(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    fn multi_component_db() -> Database {
        db2(&[
            ["a", "b"],
            ["b", "c"],
            ["p", "q"],
            ["p", "x"],
            ["q", "r"],
            ["z", "z"],
        ])
    }

    #[test]
    fn session_answers_match_cold_engine_answers() {
        let db = multi_component_db();
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let queries = [examples::q3(), examples::q4(), examples::q5()];
        for q in &queries {
            let cold = CqaEngine::new(q.clone()).certain(&db);
            let warm = session.certain(q);
            assert_eq!(cold.certain, warm.certain, "{}", q.display());
            assert_eq!(cold.answered_by, warm.answered_by, "{}", q.display());
            assert_eq!(cold.certain, certain_brute(q, &db), "{}", q.display());
        }
        // Second pass: all hits, same answers.
        for q in &queries {
            let cold = CqaEngine::new(q.clone()).certain(&db);
            assert_eq!(session.certain(q).certain, cold.certain);
        }
        let stats = session.stats();
        assert_eq!(stats.queries, 6);
        assert_eq!(stats.distinct_queries, 3);
        assert_eq!(stats.cache_hits, 3);
    }

    #[test]
    fn normalised_query_text_shares_a_cache_entry() {
        let db = db2(&[["a", "b"], ["b", "c"]]);
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let spaced = parse_query("R(x | y) R(y | z)").unwrap();
        let dense = parse_query("R(x|y) R(y|z)").unwrap();
        assert!(session.certain(&spaced).certain);
        assert!(session.certain(&dense).certain);
        let stats = session.stats();
        assert_eq!(stats.distinct_queries, 1, "normalised text is the key");
        assert_eq!(stats.cache_hits, 1);
    }

    #[test]
    fn engine_seeded_session_reuses_the_engine() {
        let db = multi_component_db();
        let engine = CqaEngine::with_config(
            examples::q3(),
            EngineConfig::default().with_route(RoutePolicy::Component),
        );
        let mut session = engine.session(&db);
        let ans = session.certain(engine.query());
        assert!(ans.certain);
        assert_eq!(ans.answered_by, AnsweredBy::ComponentCertK);
        assert_eq!(session.stats().distinct_queries, 1);
        // The seeded entry counts as distinct but its first call still
        // has to analyse the database (no hit).
        assert_eq!(session.stats().cache_hits, 0);
        assert_eq!(session.certain(engine.query()).certain, ans.certain);
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn session_serves_conp_queries_via_brute_force() {
        let q2 = examples::q2();
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let mut session = CqaSession::new(&db, EngineConfig::default());
        let engine = CqaEngine::new(q2.clone());
        assert_eq!(engine.classification().complexity, Complexity::CoNpComplete);
        let warm = session.certain(&q2);
        assert_eq!(warm.answered_by, AnsweredBy::BruteForce);
        assert_eq!(warm.certain, engine.certain(&db).certain);
        // Cached solutions serve the repeat.
        assert_eq!(session.certain(&q2).certain, warm.certain);
        assert_eq!(session.stats().cache_hits, 1);
    }

    #[test]
    fn capped_session_evicts_lru_and_stays_correct() {
        let db = multi_component_db();
        let mut capped = CqaSession::with_capacity(&db, EngineConfig::default(), 2);
        let mut free = CqaSession::new(&db, EngineConfig::default());
        let queries = [examples::q3(), examples::q4(), examples::q5()];
        // Two passes over three queries with a 2-entry cache: every pass
        // re-creates the evicted entry, verdicts never change.
        for _ in 0..2 {
            for q in &queries {
                assert_eq!(
                    capped.certain(q).certain,
                    free.certain(q).certain,
                    "{}",
                    q.display()
                );
            }
        }
        let stats = capped.stats();
        assert_eq!(stats.queries, 6);
        assert!(
            stats.evictions >= 2,
            "3 distinct queries through a 2-entry cache must evict: {stats:?}"
        );
        // Distinct counts entries ever created (monotone), so the
        // re-created entries count again.
        assert_eq!(
            stats.distinct_queries,
            3 + stats.evictions.min(3),
            "{stats:?}"
        );
        assert_eq!(free.stats().evictions, 0);
        // LRU order: with cap 2, asking q3 q4 q3 q5 must evict q4 (the
        // least recently used), so a following q3 still hits.
        let mut lru = CqaSession::with_capacity(&db, EngineConfig::default(), 2);
        let (q3, q4, q5) = (examples::q3(), examples::q4(), examples::q5());
        lru.certain(&q3);
        lru.certain(&q4);
        lru.certain(&q3);
        lru.certain(&q5); // evicts q4, not q3
        let hits_before = lru.stats().cache_hits;
        lru.certain(&q3);
        assert_eq!(lru.stats().cache_hits, hits_before + 1, "q3 survived");
        assert_eq!(lru.stats().evictions, 1);
    }

    #[test]
    fn early_exit_session_keeps_the_verdict() {
        let db = multi_component_db();
        // threads = 1 makes the skip count deterministic (the first
        // component is certain, so the sequential fan-out must skip the
        // rest); under free scheduling tiny components could all finish
        // before any worker sees the cancel flag.
        let mut config = EngineConfig::default()
            .with_early_exit(true)
            .with_threads(1);
        config.routing.min_facts = 4;
        config.routing.min_components = 2;
        let mut deterministic_cfg = config.with_early_exit(false);
        deterministic_cfg.routing = config.routing;
        let mut eager = CqaSession::new(&db, config);
        let mut det = CqaSession::new(&db, deterministic_cfg);
        let q3 = examples::q3();
        let e = eager.certain(&q3);
        let d = det.certain(&q3);
        assert_eq!(e.certain, d.certain);
        assert_eq!(e.answered_by, AnsweredBy::ComponentCertK);
        assert_eq!(e.components, d.components, "partition size is provenance");
        assert_eq!(d.skipped_components, Some(0));
        assert!(e.skipped_components.unwrap() > 0, "early exit skipped work");
    }
}
