//! The cancellation-latency acceptance test behind the BASELINES.md
//! "mid-fixpoint cancellation" row: on a workload whose uncancelled
//! solve takes seconds, a deadline that expires mid-fixpoint must be
//! honoured within ~100 ms — roughly one worklist block's worth of
//! work — not after the whole fixpoint completes.
//!
//! The session cache is warmed with an already-cancelled run first
//! (solution enumeration is deliberately not cancellable — it is pure
//! preparation and is kept even on cancel), so the timed request
//! spends its deadline inside the fixpoint proper, which is where the
//! per-block [`CancelToken`] polls live.

use cqa::solvers::CancelToken;
use cqa::{EngineConfig, SharedSession};
use cqa_model::{Database, Fact, Signature};
use cqa_query::examples;
use std::sync::Arc;
use std::time::{Duration, Instant};

#[test]
fn mid_fixpoint_cancellation_lands_within_the_latency_budget() {
    // A 300k-fact chain: q-connected into one huge component, so the
    // fixpoint grinds through hundreds of thousands of blocks.
    let mut db = Database::new(Signature::new(2, 1).unwrap());
    for i in 0..300_000usize {
        db.insert(Fact::from_names([format!("a{i}"), format!("a{}", i + 1)]))
            .unwrap();
    }
    let q = examples::q3();
    let session = SharedSession::new(Arc::new(db), EngineConfig::default().with_threads(1));

    // Warm-up under a raised token: enumerates and caches the solution
    // set, emits no verdict. Its cost is the enumeration share of an
    // uncancelled cold solve.
    let raised = CancelToken::new();
    raised.cancel();
    let t0 = Instant::now();
    assert!(
        session.certain_cancellable(&q, &raised).is_err(),
        "a cancelled warm-up must not emit a verdict"
    );
    let warmup = t0.elapsed();

    // The measured run: the deadline expires mid-fixpoint and must be
    // honoured within ~100 ms (debug-build overshoot measures ~20 ms;
    // the rest is scheduler headroom).
    let deadline = Duration::from_millis(400);
    let token = CancelToken::deadline_in(deadline);
    let t1 = Instant::now();
    let cancelled = session.certain_cancellable(&q, &token);
    let latency = t1.elapsed();
    assert!(cancelled.is_err(), "the deadline must cancel this run");
    let overshoot = latency.saturating_sub(deadline);
    assert!(
        overshoot <= Duration::from_millis(100),
        "cancellation overshot the deadline by {overshoot:?} (latency {latency:?})"
    );

    // Reference: the same query uncancelled, on the warmed cache. Its
    // cost plus the warm-up is the uncancelled end-to-end solve, which
    // must dwarf the deadline for the measurement above to mean
    // anything.
    let t2 = Instant::now();
    let answer = session
        .certain_cancellable(&q, &CancelToken::new())
        .expect("calm run must complete");
    let solve = t2.elapsed();
    assert!(answer.certain, "the chain family is consistent");
    assert!(
        warmup + solve >= Duration::from_secs(2),
        "workload too small to prove anything: uncancelled {:?}",
        warmup + solve
    );
}
