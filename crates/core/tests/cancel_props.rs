//! Cancellation-correctness properties, at engine level: across random
//! q3 and q6 workloads and 1..=4 solver threads,
//!
//! * a run under a **cancelled** token never emits a verdict — it
//!   always comes back `Err(CancelledSolve)`;
//! * a run under a **calm** (never-firing) token is byte-identical to
//!   the deterministic `certain` path — cancellation plumbing must be
//!   invisible when it doesn't fire.
//!
//! Together these pin the contract the server relies on: a deadline can
//! only withhold an answer, never change one, so cancelled requests are
//! always safe to retry.

use cqa::solvers::CancelToken;
use cqa::{CqaEngine, EngineConfig};
use cqa_model::{Database, Elem, Fact, Signature};
use cqa_query::examples;
use proptest::prelude::*;

fn q3_db_strategy() -> impl Strategy<Value = Database> {
    let fact = proptest::collection::vec(0u8..4, 2);
    proptest::collection::vec(fact, 1..10).prop_map(|rows| {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            let t: Vec<Elem> = row.into_iter().map(|v| Elem::int(v as i64)).collect();
            db.insert(Fact::r(t)).unwrap();
        }
        db
    })
}

fn q6_db_strategy() -> impl Strategy<Value = Database> {
    let fact = proptest::collection::vec(0u8..3, 3);
    proptest::collection::vec(fact, 1..8).prop_map(|rows| {
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        for row in rows {
            let t: Vec<Elem> = row.into_iter().map(|v| Elem::int(v as i64)).collect();
            db.insert(Fact::r(t)).unwrap();
        }
        db
    })
}

/// The shared property body: raised token ⇒ no verdict; calm token ⇒
/// Debug-identical answer to the deterministic path at every thread
/// count.
fn check(query: &cqa_query::Query, db: &Database) {
    let raised = CancelToken::new();
    raised.cancel();
    for threads in 1..=4usize {
        let engine =
            CqaEngine::with_config(query.clone(), EngineConfig::default().with_threads(threads));
        prop_assert!(
            engine.certain_cancellable(db, &raised).is_err(),
            "a cancelled run emitted a verdict at {threads} threads"
        );
        let deterministic = engine.certain(db);
        let calm = engine
            .certain_cancellable(db, &CancelToken::new())
            .expect("a calm token must never cancel");
        prop_assert_eq!(
            format!("{deterministic:?}"),
            format!("{calm:?}"),
            "calm-token answer drifted from the deterministic path at {} threads",
            threads
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn q3_cancellation_withholds_but_never_changes_verdicts(db in q3_db_strategy()) {
        check(&examples::q3(), &db);
    }

    #[test]
    fn q6_cancellation_withholds_but_never_changes_verdicts(db in q6_db_strategy()) {
        check(&examples::q6(), &db);
    }
}
