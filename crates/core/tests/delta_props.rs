//! Delta-vs-recompute differential properties at session level: across
//! random q3 and q6 databases, random seeded insert/retract scripts
//! (every touch locality: same-block, cross-component, mixed) and
//! 1..=4 solver threads,
//!
//! * chaining deltas through [`SharedSession::with_delta`] — patched
//!   verdicts, warm-restarted fixpoints, retained untouched components —
//!   answers **identically** to a cold [`CqaEngine`] solving the
//!   post-delta database from scratch, after every step of the chain;
//! * both agree with exhaustive repair enumeration
//!   ([`cqa::solvers::certain_brute`]), the semantic definition of
//!   certainty, and (for the `Cert_k` class) with the frozen seed-era
//!   fixpoint oracle [`certk_reference`];
//! * the predecessor session keeps answering for its own database —
//!   deltas never mutate a live session in place.
//!
//! This is the acceptance gate of the live-update layer: if warm restart
//! or verdict patching is wrong anywhere, some script in this space
//! flips a verdict and the differential catches it.

use cqa::solvers::certk::reference::certk_reference;
use cqa::solvers::{certain_brute, CertKConfig};
use cqa::{CqaEngine, EngineConfig, SharedSession};
use cqa_model::{Database, Elem, Fact, Signature};
use cqa_query::examples;
use cqa_workloads::{random_delta_ops, split_delta_ops, DeltaLocality, DeltaScriptConfig};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::Arc;

fn q3_db_strategy() -> impl Strategy<Value = Database> {
    let fact = proptest::collection::vec(0u8..4, 2);
    proptest::collection::vec(fact, 1..10).prop_map(|rows| {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            let t: Vec<Elem> = row.into_iter().map(|v| Elem::int(v as i64)).collect();
            db.insert(Fact::r(t)).unwrap();
        }
        db
    })
}

fn q6_db_strategy() -> impl Strategy<Value = Database> {
    let fact = proptest::collection::vec(0u8..3, 3);
    proptest::collection::vec(fact, 1..7).prop_map(|rows| {
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        for row in rows {
            let t: Vec<Elem> = row.into_iter().map(|v| Elem::int(v as i64)).collect();
            db.insert(Fact::r(t)).unwrap();
        }
        db
    })
}

/// One generated delta step: a script seed plus a locality selector.
fn step_strategy() -> impl Strategy<Value = (u64, u8)> {
    (0u64..1_000_000, 0u8..3)
}

fn locality_of(raw: u8) -> DeltaLocality {
    match raw % 3 {
        0 => DeltaLocality::SameBlock,
        1 => DeltaLocality::CrossComponent,
        _ => DeltaLocality::Mixed,
    }
}

/// The shared property body: replay `steps` as a with_delta chain and as
/// independent from-scratch recomputes, comparing verdicts after every
/// step at every thread count. `certk_oracle` additionally pins the
/// verdict to the frozen reference fixpoint (valid only for queries the
/// engine decides by `Cert_k` alone, i.e. q3 — q6 routes through the
/// Theorem 10.5 combined solver, where brute force is the oracle).
fn check_chain(
    q: &cqa_query::Query,
    db: &Database,
    steps: &[(u64, u8)],
    certk_oracle: bool,
) -> Result<(), TestCaseError> {
    for threads in 1..=4usize {
        let config = EngineConfig::default().with_threads(threads);
        let mut session = SharedSession::new(Arc::new(db.clone()), config);
        // Warm the pre-delta cache so with_delta patches rather than
        // lazily re-solves (both must be right; this path exercises the
        // patching).
        let base_verdict = session.certain(q).certain;
        prop_assert_eq!(
            base_verdict,
            certain_brute(q, db),
            "cold session verdict diverged from brute force on the base"
        );
        let mut current = db.clone();
        for (i, &(seed, raw_loc)) in steps.iter().enumerate() {
            let cfg = DeltaScriptConfig {
                ops: 5,
                insert_ratio: 0.6,
                locality: locality_of(raw_loc),
                domain: 4,
            };
            let (inserts, retracts) = split_delta_ops(&random_delta_ops(seed, &current, &cfg));
            let (next, _report) = session
                .with_delta(&inserts, &retracts)
                .expect("generated facts carry the database's signature");
            current.apply_delta(&inserts, &retracts).unwrap();

            let warm = next.certain(q).certain;
            let cold = CqaEngine::with_config(q.clone(), config)
                .certain(&current)
                .certain;
            prop_assert_eq!(
                warm, cold,
                "incremental and from-scratch verdicts diverged at step {} ({:?}, seed {}, {} threads)",
                i, locality_of(raw_loc), seed, threads
            );
            prop_assert_eq!(
                cold,
                certain_brute(q, &current),
                "engine verdict diverged from brute force at step {}",
                i
            );
            if certk_oracle {
                prop_assert_eq!(
                    cold,
                    certk_reference(q, &current, CertKConfig::new(2)).is_certain(),
                    "engine verdict diverged from the reference fixpoint at step {}",
                    i
                );
            }
            // The predecessor still answers for its own database.
            prop_assert_eq!(session.certain(q).certain, certain_brute(q, session.db()));
            prop_assert_eq!(next.delta_stats().delta_applied, (i + 1) as u64);
            session = next;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn q3_delta_chains_match_recompute(
        db in q3_db_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..4),
    ) {
        check_chain(&examples::q3(), &db, &steps, true)?;
    }

    #[test]
    fn q6_delta_chains_match_recompute(
        db in q6_db_strategy(),
        steps in proptest::collection::vec(step_strategy(), 1..3),
    ) {
        check_chain(&examples::q6(), &db, &steps, false)?;
    }
}
