//! Concurrency stress tests for the sharded element interner.
//!
//! No loom here (vendored toolbox only): these tests hammer the real
//! interner from many OS threads with *overlapping* payloads, which is
//! exactly the race the shard's read-then-write upgrade must survive —
//! two threads missing the read probe for the same payload and both
//! queueing on the write lock; the double-check under the write lock must
//! make the second one return the first one's handle.

use cqa_model::{Elem, ElemData};
use std::collections::HashMap;
use std::thread;

const THREADS: usize = 8;
const NAMES: usize = 300;

/// Every thread interns the same names (shuffled phase per thread) — all
/// threads must agree on every handle, and payloads must round-trip.
#[test]
fn overlapping_named_interning_is_stable() {
    let per_thread: Vec<HashMap<String, Elem>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let mut mine = HashMap::new();
                    for i in 0..NAMES {
                        // Stagger the order per thread so collisions hit
                        // different names at different times.
                        let i = (i * 7 + t * 41) % NAMES;
                        let name = format!("stress-{i}");
                        mine.insert(name.clone(), Elem::named(name));
                    }
                    mine
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let reference = &per_thread[0];
    assert_eq!(reference.len(), NAMES);
    for (t, map) in per_thread.iter().enumerate() {
        assert_eq!(map.len(), NAMES, "thread {t} lost names");
        for (name, &e) in map {
            assert_eq!(
                reference[name], e,
                "thread {t} got a different handle for {name}"
            );
            assert_eq!(e.data(), ElemData::Named(name.clone()), "payload roundtrip");
        }
    }
    // Distinct names got distinct handles.
    let mut ids: Vec<u32> = reference.values().map(|e| e.id()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), NAMES);
}

/// Same race, deeper payloads: pairs built over shared leaves from every
/// thread, interleaved with re-interning the leaves.
#[test]
fn overlapping_pair_interning_is_stable() {
    let per_thread: Vec<Vec<Elem>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    (0..NAMES)
                        .map(|i| {
                            let i = (i + t * 13) % NAMES;
                            let leaf = Elem::named(format!("pair-leaf-{}", i % 17));
                            Elem::pair(leaf, Elem::int(i as i64))
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Re-derive each pair single-threaded: interning is idempotent, so the
    // handles must match what the racing threads produced.
    for (t, pairs) in per_thread.iter().enumerate() {
        for (slot, &e) in pairs.iter().enumerate() {
            let i = (slot + t * 13) % NAMES;
            let expect = Elem::pair(
                Elem::named(format!("pair-leaf-{}", i % 17)),
                Elem::int(i as i64),
            );
            assert_eq!(e, expect, "thread {t} slot {slot}");
        }
    }
}

/// Concurrent `fresh()` + `data()` readers: reads must never observe a
/// torn store, and every fresh element stays unique.
#[test]
fn fresh_and_reads_do_not_interfere() {
    let all: Vec<Vec<Elem>> = thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                s.spawn(|| {
                    (0..200)
                        .map(|_| {
                            let e = Elem::fresh();
                            assert!(matches!(e.data(), ElemData::Fresh(_)));
                            e
                        })
                        .collect()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let flat: Vec<Elem> = all.into_iter().flatten().collect();
    let unique: std::collections::HashSet<Elem> = flat.iter().copied().collect();
    assert_eq!(unique.len(), flat.len());
}
