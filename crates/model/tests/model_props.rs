//! Property tests for the relational substrate: interner laws, block
//! partition invariants, repair axioms.

use cqa_model::{Database, Elem, ElemData, Fact, Repair, RepairIter, Signature};
use proptest::prelude::*;
use std::collections::HashSet;

fn elem_strategy() -> impl Strategy<Value = Elem> {
    prop_oneof![
        "[a-e]{1,3}".prop_map(Elem::named),
        (-20i64..20).prop_map(Elem::int),
        ((-5i64..5), (-5i64..5)).prop_map(|(a, b)| Elem::pair(Elem::int(a), Elem::int(b))),
    ]
}

fn db_strategy(arity: usize, key_len: usize) -> impl Strategy<Value = Database> {
    proptest::collection::vec(proptest::collection::vec(elem_strategy(), arity), 0..12).prop_map(
        move |rows| {
            let mut db = Database::new(Signature::new(arity, key_len).unwrap());
            for row in rows {
                db.insert(Fact::r(row)).unwrap();
            }
            db
        },
    )
}

proptest! {
    // Bounded so the full workspace test run stays fast and, with the
    // vendored proptest's name-derived seeding, fully deterministic.
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn interning_is_injective_on_payloads(a in elem_strategy(), b in elem_strategy()) {
        prop_assert_eq!(a == b, a.data() == b.data());
    }

    #[test]
    fn pair_constructor_is_structural(a in elem_strategy(), b in elem_strategy()) {
        let p = Elem::pair(a, b);
        match p.data() {
            ElemData::Pair(x, y) => {
                prop_assert_eq!(x, a);
                prop_assert_eq!(y, b);
            }
            other => prop_assert!(false, "pair payload was {other:?}"),
        }
    }

    #[test]
    fn blocks_partition_facts(db in db_strategy(3, 1)) {
        // Every fact is in exactly one block; blocks hold key-equal facts;
        // facts in different blocks are not key-equal.
        let sig = *db.signature();
        let mut seen = HashSet::new();
        for b in db.block_ids() {
            for &f in db.block(b) {
                prop_assert!(seen.insert(f), "fact {f:?} in two blocks");
                prop_assert_eq!(db.block_of(f), b);
            }
            let first = db.fact(db.block(b)[0]);
            for &f in db.block(b) {
                prop_assert!(db.fact(f).key_equal(first, &sig));
            }
        }
        prop_assert_eq!(seen.len(), db.len());
    }

    #[test]
    fn insertion_is_idempotent_set_semantics(db in db_strategy(2, 1)) {
        let mut copy = db.clone();
        let before = copy.len();
        // Re-inserting every fact changes nothing.
        let facts: Vec<Fact> = db.facts().map(|(_, f)| f.clone()).collect();
        for f in facts {
            copy.insert(f).unwrap();
        }
        prop_assert_eq!(copy.len(), before);
        prop_assert_eq!(copy.block_count(), db.block_count());
    }

    #[test]
    fn repair_count_equals_block_size_product(db in db_strategy(2, 1)) {
        let expected: u128 = db.block_ids().map(|b| db.block(b).len() as u128).product();
        prop_assert_eq!(db.repair_count(), expected.max(1));
    }

    #[test]
    fn repair_iteration_enumerates_exactly_all(db in db_strategy(2, 1)) {
        prop_assume!(db.repair_count() <= 4096);
        let repairs: Vec<Repair> = RepairIter::new(&db).collect();
        prop_assert_eq!(repairs.len() as u128, db.repair_count());
        let set: HashSet<&Repair> = repairs.iter().collect();
        prop_assert_eq!(set.len(), repairs.len(), "duplicate repairs");
        for r in &repairs {
            // maximal + consistent: one chosen fact per block, right block.
            for b in db.block_ids() {
                prop_assert_eq!(db.block_of(r.chosen(b)), b);
            }
        }
    }

    #[test]
    fn replace_is_involutive(db in db_strategy(2, 1)) {
        prop_assume!(!db.is_empty());
        let r = Repair::first(&db);
        // Pick the first multi-fact block, if any.
        for b in db.block_ids() {
            let facts = db.block(b);
            if facts.len() >= 2 {
                let (f0, f1) = (facts[0], facts[1]);
                let swapped = r.replace(&db, f0, f1);
                prop_assert!(swapped.contains(&db, f1));
                let back = swapped.replace(&db, f1, f0);
                prop_assert_eq!(back, r);
                break;
            }
        }
    }

    #[test]
    fn restrict_preserves_membership(db in db_strategy(3, 2)) {
        let chosen: Vec<_> = db.fact_ids().step_by(2).collect();
        let sub = db.restrict(chosen.iter().copied());
        prop_assert_eq!(sub.len(), chosen.len());
        for id in chosen {
            prop_assert!(sub.contains(db.fact(id)));
        }
    }

    #[test]
    fn absorb_is_union(a in db_strategy(2, 1), b in db_strategy(2, 1)) {
        let mut u = a.clone();
        u.absorb(&b).unwrap();
        for (_, f) in a.facts() {
            prop_assert!(u.contains(f));
        }
        for (_, f) in b.facts() {
            prop_assert!(u.contains(f));
        }
        let distinct: HashSet<&Fact> =
            a.facts().map(|(_, f)| f).chain(b.facts().map(|(_, f)| f)).collect();
        prop_assert_eq!(u.len(), distinct.len());
    }
}
