//! Interned domain elements.
//!
//! The paper works over an abstract infinite domain. The constructions it
//! performs on that domain are not purely atomic, however: the reduction of
//! Proposition 4.1 builds elements that are *pairs* `⟨z, α⟩` of a query
//! variable and an element, and the coNP-hardness gadget of Section 9 builds
//! elements annotated by clauses and literals (e.g. `⟨C, l⟩x`). We therefore
//! realise the domain as a term algebra with four constructors:
//!
//! * [`ElemData::Named`] — a user-visible symbolic constant (`"a"`, `"C1"`),
//! * [`ElemData::Int`] — a numeric constant (workload generators),
//! * [`ElemData::Pair`] — an ordered pair of elements (reductions),
//! * [`ElemData::Fresh`] — a gensym guaranteed distinct from everything else
//!   (tripath arms, block padding facts).
//!
//! Elements are interned: an [`Elem`] is a `u32` handle into a global
//! append-only store, so equality is an integer comparison and facts are
//! compact. The store is never cleared — element identity is stable across
//! all databases of a process, which is exactly what the reductions need
//! when they transport facts from one database into another.
//!
//! ### Concurrency
//! The store is **sharded**: an element's payload hash picks one of
//! [`SHARDS`] independent `RwLock`-protected shards, and the handle
//! encodes the shard in its low bits. Interning the same payload always
//! lands on the same shard (and yields the same handle, no matter which
//! thread got there first), while payloads on different shards intern
//! with no lock interaction at all — concurrent fact construction no
//! longer serialises on a single global lock. Within a shard, interning
//! takes a read lock first and only upgrades to a write lock on a miss,
//! so the steady state (mostly re-interning known elements) is
//! read-lock-only. The `&'static` store itself sits behind a `OnceLock`,
//! so reaching it is a lock-free atomic load after initialisation.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned domain element. Cheap to copy and compare; the payload lives
/// in the global store and can be recovered with [`Elem::data`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Elem(u32);

/// The payload of an element.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum ElemData {
    /// A named constant, e.g. `a`, `b`, `C1`.
    Named(String),
    /// An integer constant.
    Int(i64),
    /// An ordered pair `⟨fst, snd⟩` of elements.
    Pair(Elem, Elem),
    /// A gensym; the `u64` is a process-unique counter value.
    Fresh(u64),
}

/// Number of interner shards (a power of two; the shard index lives in the
/// low [`SHARD_BITS`] bits of an [`Elem`] handle).
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// One shard: a local append-only payload store plus its reverse index.
/// Local slot `i` of shard `s` is the global handle `i << SHARD_BITS | s`.
#[derive(Default)]
struct Shard {
    data: Vec<ElemData>,
    index: HashMap<ElemData, u32>,
}

struct Store {
    shards: [RwLock<Shard>; SHARDS],
}

impl Store {
    fn new() -> Store {
        Store {
            shards: std::array::from_fn(|_| RwLock::new(Shard::default())),
        }
    }

    fn intern(&self, d: ElemData) -> Elem {
        let s = shard_of(&d);
        // Fast path: the payload is already interned (read lock only).
        {
            let shard = self.shards[s].read().expect("interner lock poisoned");
            if let Some(&local) = shard.index.get(&d) {
                return Elem(local << SHARD_BITS | s as u32);
            }
        }
        // Slow path: re-check under the write lock (another thread may have
        // interned the same payload between the two lock acquisitions).
        let mut shard = self.shards[s].write().expect("interner lock poisoned");
        if let Some(&local) = shard.index.get(&d) {
            return Elem(local << SHARD_BITS | s as u32);
        }
        let local = u32::try_from(shard.data.len())
            .ok()
            .filter(|&l| l < 1 << (32 - SHARD_BITS))
            .expect("element store exhausted (shard over 2^28 elements)");
        shard.data.push(d.clone());
        shard.index.insert(d, local);
        Elem(local << SHARD_BITS | s as u32)
    }

    fn data(&self, e: Elem) -> ElemData {
        let shard = self.shards[(e.0 & (SHARDS as u32 - 1)) as usize]
            .read()
            .expect("interner lock poisoned");
        shard.data[(e.0 >> SHARD_BITS) as usize].clone()
    }
}

/// Deterministic shard choice: `DefaultHasher::new()` uses fixed keys, so
/// the payload → shard map is stable across threads, runs and processes.
fn shard_of(d: &ElemData) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    d.hash(&mut h);
    (h.finish() as usize) & (SHARDS - 1)
}

fn store() -> &'static Store {
    static STORE: OnceLock<Store> = OnceLock::new();
    STORE.get_or_init(Store::new)
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

impl Elem {
    /// Intern a named constant.
    pub fn named(name: impl Into<String>) -> Elem {
        store().intern(ElemData::Named(name.into()))
    }

    /// Intern an integer constant.
    pub fn int(v: i64) -> Elem {
        store().intern(ElemData::Int(v))
    }

    /// Intern the ordered pair `⟨fst, snd⟩`.
    pub fn pair(fst: Elem, snd: Elem) -> Elem {
        store().intern(ElemData::Pair(fst, snd))
    }

    /// Create a fresh element distinct from every element created so far and
    /// from every element that will ever be created by other means.
    pub fn fresh() -> Elem {
        let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
        store().intern(ElemData::Fresh(n))
    }

    /// A clone of this element's payload.
    pub fn data(self) -> ElemData {
        store().data(self)
    }

    /// The raw interner handle. Only meaningful within one process. The low
    /// bits carry the store shard, so handles are unique but **not dense**:
    /// do not use them as array indices.
    pub fn id(self) -> u32 {
        self.0
    }

    /// Build a left-nested tuple `⟨⟨…⟨e1,e2⟩…⟩,en⟩` out of two or more
    /// elements. Handy for the Section 9 annotations like `⟨C, C2, l⟩`.
    ///
    /// # Panics
    /// Panics if `parts` has fewer than two elements.
    pub fn tuple(parts: &[Elem]) -> Elem {
        assert!(parts.len() >= 2, "Elem::tuple needs at least two parts");
        let mut acc = Elem::pair(parts[0], parts[1]);
        for &p in &parts[2..] {
            acc = Elem::pair(acc, p);
        }
        acc
    }
}

impl fmt::Debug for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.data() {
            ElemData::Named(s) => write!(f, "{s}"),
            ElemData::Int(v) => write!(f, "{v}"),
            ElemData::Pair(a, b) => write!(f, "⟨{a},{b}⟩"),
            ElemData::Fresh(n) => write!(f, "_f{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_elements_are_interned() {
        let a1 = Elem::named("a");
        let a2 = Elem::named("a");
        let b = Elem::named("b");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_eq!(a1.data(), ElemData::Named("a".to_string()));
    }

    #[test]
    fn ints_and_names_do_not_collide() {
        let one = Elem::int(1);
        let one_name = Elem::named("1");
        assert_ne!(one, one_name);
    }

    #[test]
    fn pairs_are_structural() {
        let a = Elem::named("a");
        let b = Elem::named("b");
        let p1 = Elem::pair(a, b);
        let p2 = Elem::pair(a, b);
        let p3 = Elem::pair(b, a);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        assert_eq!(p1.data(), ElemData::Pair(a, b));
    }

    #[test]
    fn nested_pairs() {
        let a = Elem::named("a");
        let b = Elem::named("b");
        let c = Elem::named("c");
        let t = Elem::tuple(&[a, b, c]);
        assert_eq!(t, Elem::pair(Elem::pair(a, b), c));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tuple_rejects_singletons() {
        let _ = Elem::tuple(&[Elem::named("a")]);
    }

    #[test]
    fn fresh_elements_are_distinct() {
        let f1 = Elem::fresh();
        let f2 = Elem::fresh();
        assert_ne!(f1, f2);
        let named = Elem::named("_f0");
        assert_ne!(f1, named);
    }

    #[test]
    fn display_forms() {
        let a = Elem::named("a");
        let p = Elem::pair(a, Elem::int(3));
        assert_eq!(format!("{p}"), "⟨a,3⟩");
    }

    #[test]
    fn fresh_from_many_threads_stay_distinct() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..100).map(|_| Elem::fresh()).collect::<Vec<_>>()))
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().unwrap());
        }
        let unique: std::collections::HashSet<_> = all.iter().copied().collect();
        assert_eq!(unique.len(), all.len());
    }
}
