//! The one-fact text line: `R(a b | c d)`.
//!
//! This is the atom both the fact-file format (`crates/cli`'s `dbfmt`)
//! and the delta-script grammar (`cqa update`, the server's `update`
//! verb, `cqa_workloads::deltas`) are built from, so it lives here, next
//! to [`Fact`] itself — one grammar, one parser, one renderer, and the
//! `render ∘ parse` fixpoint is pinned once.
//!
//! A line names the relation (`R`, `R1` or `R2`), then the tuple with a
//! single `|` bar after the key positions; elements are whitespace- or
//! comma-separated names, with `⟨…⟩` pair elements allowed to contain
//! separators and bars. The bar makes every line *self-describing*: its
//! position is the key length, independent of any database signature
//! (`docs/FORMAT.md` specifies the corner cases).

use crate::{Elem, Fact, RelId};
use std::fmt::Write as _;

/// Parse one fact line: `R(a b | c d)`. Returns the fact and the key
/// length the bar position declares (`R(a b | c)` → 2; a bar-free line
/// declares an empty key). Errors are bare messages; callers attach
/// position information.
pub fn parse_fact_line(text: &str) -> Result<(Fact, usize), String> {
    let text = text.trim();
    let open = match text.find('(') {
        Some(i) => i,
        None => return Err("expected '(' in fact".into()),
    };
    let close = match text.rfind(')') {
        Some(i) if i > open => i,
        _ => return Err("expected closing ')'".into()),
    };
    let rel = match text[..open].trim() {
        "R" => RelId::R,
        "R1" => RelId::R1,
        "R2" => RelId::R2,
        other => return Err(format!("unknown relation {other:?} (use R, R1 or R2)")),
    };
    let trailing = text[close + 1..].trim();
    if !trailing.is_empty() {
        return Err(format!("trailing input {trailing:?} after ')'"));
    }
    let inner = &text[open + 1..close];
    // Locate the key/value bar with ⟨…⟩ depth awareness: a '|' inside a
    // pair element (e.g. `R(⟨a|b⟩ x | y)`) is element payload, not the
    // separator. Unbalanced brackets are caught by `tokens` below, so a
    // stray '⟩' here may saturate the depth without masking anything.
    let mut bar = None;
    let mut depth = 0usize;
    for (i, c) in inner.char_indices() {
        match c {
            '⟨' => depth += 1,
            '⟩' => depth = depth.saturating_sub(1),
            '|' if depth == 0 => {
                bar = Some(i);
                break;
            }
            _ => {}
        }
    }
    let (key_part, val_part) = match bar {
        Some(i) => (&inner[..i], &inner[i + 1..]),
        None => ("", inner),
    };
    // Tokenize with awareness of ⟨…⟩ pair elements (which contain commas):
    // a token is either a balanced ⟨…⟩ group or a run of non-separator
    // characters. Unbalanced brackets and a second top-level '|' are
    // errors — silently merging them into an element corrupts the tuple
    // and breaks the write→parse→write fixpoint.
    fn tokens(s: &str) -> Result<Vec<Elem>, String> {
        let mut out = Vec::new();
        let mut cur = String::new();
        let mut depth = 0usize;
        for c in s.chars() {
            match c {
                '⟨' => {
                    depth += 1;
                    cur.push(c);
                }
                '⟩' => {
                    if depth == 0 {
                        return Err("stray '⟩' with no matching '⟨'".into());
                    }
                    depth -= 1;
                    cur.push(c);
                }
                '|' if depth == 0 => {
                    return Err(
                        "unexpected '|' (one key/value separator per fact; a literal '|' \
                         must sit inside a ⟨…⟩ element)"
                            .into(),
                    );
                }
                c if depth == 0 && (c.is_whitespace() || c == ',') => {
                    if !cur.is_empty() {
                        out.push(Elem::named(std::mem::take(&mut cur)));
                    }
                }
                c => cur.push(c),
            }
        }
        if depth != 0 {
            return Err(format!("unclosed '⟨' ({depth} open at end of fact)"));
        }
        if !cur.is_empty() {
            out.push(Elem::named(cur));
        }
        Ok(out)
    }
    let key = tokens(key_part)?;
    let vals = tokens(val_part)?;
    let key_len = key.len();
    let mut tuple = key;
    tuple.extend(vals);
    if tuple.is_empty() {
        return Err("fact with no elements".into());
    }
    Ok((Fact::new(rel, tuple), key_len))
}

/// Render one fact as a parseable line: `R(a b | c d)`, with the bar
/// after `key_len` positions. The inverse of [`parse_fact_line`] —
/// unlike [`Fact`]'s `Display`, which omits the bar and is therefore
/// *not* re-parseable with the right key.
///
/// A full-key fact renders with a trailing bar (`R(a b |)`): omitting it
/// would re-parse the fact with an empty key.
///
/// # Panics
/// Panics if `key_len` exceeds the fact's arity.
pub fn render_fact_line(f: &Fact, key_len: usize) -> String {
    assert!(key_len <= f.arity(), "key length exceeds fact arity");
    let mut out = String::new();
    let _ = write!(out, "{}(", f.rel());
    for (i, e) in f.tuple().iter().enumerate() {
        if i == key_len {
            let _ = write!(out, "| ");
        }
        let _ = write!(out, "{e}");
        if i + 1 != f.arity() {
            let _ = write!(out, " ");
        }
    }
    if key_len == f.arity() {
        let _ = write!(out, " |");
    }
    let _ = write!(out, ")");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_render_round_trip() {
        for line in [
            "R(a b | c d)",
            "R1(k | v)",
            "R2(x |)",
            "R(⟨a,b⟩ | ⟨c,d⟩)",
            "R(| a b)",
        ] {
            let (fact, key_len) = parse_fact_line(line).unwrap();
            let rendered = render_fact_line(&fact, key_len);
            let (fact2, key_len2) = parse_fact_line(&rendered).unwrap();
            assert_eq!(fact, fact2, "{line}");
            assert_eq!(key_len, key_len2, "{line}");
        }
    }

    #[test]
    fn full_key_fact_keeps_its_trailing_bar() {
        let (fact, key_len) = parse_fact_line("R(a b |)").unwrap();
        assert_eq!(key_len, 2);
        assert_eq!(render_fact_line(&fact, key_len), "R(a b |)");
    }

    #[test]
    fn bad_lines_are_rejected() {
        for bad in ["R a b", "R(a b", "Q(a | b)", "R()", "R(a | b | c)", "R(⟨a)"] {
            assert!(parse_fact_line(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn pair_elements_may_contain_bars_and_commas() {
        let (fact, key_len) = parse_fact_line("R(⟨a|b⟩ x | y)").unwrap();
        assert_eq!(key_len, 2);
        assert_eq!(fact.arity(), 3);
    }
}
