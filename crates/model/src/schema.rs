//! Relation signatures.
//!
//! The paper fixes a single relation symbol `R` with signature `[k, l]`:
//! arity `k ≥ 1` with the first `l ≥ 0` positions forming the primary key
//! (Section 2). The self-join-free detour of Section 4 temporarily uses two
//! relation symbols `R1`, `R2` of the same signature, so facts carry a
//! [`RelId`] and a database may hold facts of several relations.

use std::fmt;

/// Identifier of a relation symbol. `RelId(0)` conventionally denotes the
/// paper's `R`; the canonical self-join-free query of Section 4 uses
/// [`RelId::R1`] and [`RelId::R2`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u16);

impl RelId {
    /// The default self-join relation symbol `R`.
    pub const R: RelId = RelId(0);
    /// First relation of the canonical self-join-free query `sjf(q)`.
    pub const R1: RelId = RelId(1);
    /// Second relation of the canonical self-join-free query `sjf(q)`.
    pub const R2: RelId = RelId(2);
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RelId::R => write!(f, "R"),
            RelId::R1 => write!(f, "R1"),
            RelId::R2 => write!(f, "R2"),
            RelId(n) => write!(f, "R{n}"),
        }
    }
}

/// A signature `[k, l]`: arity `k ≥ 1`, the first `l` positions are the key.
///
/// `l = 0` is permitted by the definition (the whole relation is then a
/// single block); `l = k` means every fact is its own block (the database is
/// always consistent).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Signature {
    arity: usize,
    key_len: usize,
}

impl Signature {
    /// Create a signature `[arity, key_len]`.
    ///
    /// # Errors
    /// Rejects `arity == 0` and `key_len > arity`.
    pub fn new(arity: usize, key_len: usize) -> Result<Signature, crate::ModelError> {
        if arity == 0 {
            return Err(crate::ModelError::BadSignature {
                arity,
                key_len,
                reason: "arity must be ≥ 1",
            });
        }
        if key_len > arity {
            return Err(crate::ModelError::BadSignature {
                arity,
                key_len,
                reason: "key length must not exceed arity",
            });
        }
        Ok(Signature { arity, key_len })
    }

    /// The arity `k`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number `l` of key positions.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// The set `K` of key positions, i.e. `0..l`.
    pub fn key_positions(&self) -> std::ops::Range<usize> {
        0..self.key_len
    }

    /// The set of non-key positions, i.e. `l..k`.
    pub fn value_positions(&self) -> std::ops::Range<usize> {
        self.key_len..self.arity
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.arity, self.key_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_signatures() {
        let s = Signature::new(5, 3).unwrap();
        assert_eq!(s.arity(), 5);
        assert_eq!(s.key_len(), 3);
        assert_eq!(s.key_positions(), 0..3);
        assert_eq!(s.value_positions(), 3..5);
        assert_eq!(s.to_string(), "[5, 3]");
    }

    #[test]
    fn all_key_signature() {
        let s = Signature::new(2, 2).unwrap();
        assert!(s.value_positions().is_empty());
    }

    #[test]
    fn empty_key_signature() {
        let s = Signature::new(2, 0).unwrap();
        assert!(s.key_positions().is_empty());
    }

    #[test]
    fn rejects_zero_arity() {
        assert!(Signature::new(0, 0).is_err());
    }

    #[test]
    fn rejects_oversized_key() {
        assert!(Signature::new(2, 3).is_err());
    }

    #[test]
    fn rel_display() {
        assert_eq!(RelId::R.to_string(), "R");
        assert_eq!(RelId::R1.to_string(), "R1");
        assert_eq!(RelId(7).to_string(), "R7");
    }
}
