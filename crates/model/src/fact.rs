//! Facts: ground terms `R(ā)`.

use crate::{Elem, RelId, Signature};
use std::collections::BTreeSet;
use std::fmt;

/// A fact `R(e₁ … e_k)`. Immutable once built; cheap to clone (the tuple is
/// a shared `Box<[Elem]>` clone, elements are `u32` handles).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    rel: RelId,
    tuple: Box<[Elem]>,
}

impl Fact {
    /// Build a fact over relation `rel` with the given tuple.
    pub fn new(rel: RelId, tuple: impl Into<Box<[Elem]>>) -> Fact {
        Fact {
            rel,
            tuple: tuple.into(),
        }
    }

    /// Build a fact over the default relation [`RelId::R`].
    pub fn r(tuple: impl Into<Box<[Elem]>>) -> Fact {
        Fact::new(RelId::R, tuple)
    }

    /// Convenience constructor from named constants: `Fact::named("R0", ["a","b"])`
    /// is not needed; this one takes only the tuple names over relation `R`.
    pub fn from_names<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Fact {
        Fact::r(
            names
                .into_iter()
                .map(|s| Elem::named(s.as_ref()))
                .collect::<Vec<_>>(),
        )
    }

    /// The relation symbol of this fact.
    pub fn rel(&self) -> RelId {
        self.rel
    }

    /// The arity of this fact's tuple.
    pub fn arity(&self) -> usize {
        self.tuple.len()
    }

    /// The full tuple.
    pub fn tuple(&self) -> &[Elem] {
        &self.tuple
    }

    /// The element at position `i` (0-based). The paper writes `R(t̄)[i]`
    /// with 1-based positions; all code in this workspace is 0-based.
    pub fn at(&self, i: usize) -> Elem {
        self.tuple[i]
    }

    /// The key tuple: the first `sig.key_len()` elements.
    ///
    /// # Panics
    /// Panics if the signature arity does not match the fact's arity —
    /// mixing signatures is a logic error, not a recoverable condition.
    pub fn key<'a>(&'a self, sig: &Signature) -> &'a [Elem] {
        assert_eq!(
            self.arity(),
            sig.arity(),
            "fact arity does not match signature"
        );
        &self.tuple[..sig.key_len()]
    }

    /// The *set* of elements in key positions — the paper's
    /// <u>key</u>`(R(t̄)) = R(t̄)[K]`.
    pub fn key_set(&self, sig: &Signature) -> BTreeSet<Elem> {
        self.key(sig).iter().copied().collect()
    }

    /// The active domain of the fact — the paper's `adom(a) = a[S]`.
    pub fn adom(&self) -> BTreeSet<Elem> {
        self.tuple.iter().copied().collect()
    }

    /// Key-equality `a ∼ b`: same relation and identical key tuples.
    pub fn key_equal(&self, other: &Fact, sig: &Signature) -> bool {
        self.rel == other.rel && self.key(sig) == other.key(sig)
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, e) in self.tuple.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(s: &str) -> Elem {
        Elem::named(s)
    }

    #[test]
    fn key_and_adom_match_paper_example() {
        // Paper, Section 2: R has signature [5, 3] and the fact analogue of
        // A = R(x y x ; y z) has key (x, y, x), key-set {x, y},
        // vars {x, y, z}.
        let sig = Signature::new(5, 3).unwrap();
        let fact = Fact::r(vec![e("x"), e("y"), e("x"), e("y"), e("z")]);
        assert_eq!(fact.key(&sig), &[e("x"), e("y"), e("x")]);
        assert_eq!(fact.key_set(&sig), [e("x"), e("y")].into_iter().collect());
        assert_eq!(fact.adom(), [e("x"), e("y"), e("z")].into_iter().collect());
    }

    #[test]
    fn key_equality_requires_same_relation() {
        let sig = Signature::new(2, 1).unwrap();
        let a = Fact::new(RelId::R1, vec![e("k"), e("v1")]);
        let b = Fact::new(RelId::R2, vec![e("k"), e("v2")]);
        let c = Fact::new(RelId::R1, vec![e("k"), e("v3")]);
        assert!(!a.key_equal(&b, &sig));
        assert!(a.key_equal(&c, &sig));
        assert!(a.key_equal(&a, &sig));
    }

    #[test]
    fn key_equality_on_full_key() {
        let sig = Signature::new(2, 2).unwrap();
        let a = Fact::from_names(["k", "v"]);
        let b = Fact::from_names(["k", "w"]);
        assert!(!a.key_equal(&b, &sig));
    }

    #[test]
    fn empty_key_makes_everything_key_equal() {
        let sig = Signature::new(1, 0).unwrap();
        let a = Fact::from_names(["a"]);
        let b = Fact::from_names(["b"]);
        assert!(a.key_equal(&b, &sig));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn key_panics_on_arity_mismatch() {
        let sig = Signature::new(3, 1).unwrap();
        let a = Fact::from_names(["a", "b"]);
        let _ = a.key(&sig);
    }

    #[test]
    fn display() {
        let f = Fact::from_names(["a", "b"]);
        assert_eq!(f.to_string(), "R(a b)");
    }
}
