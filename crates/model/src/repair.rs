//! Repairs and repair enumeration.
//!
//! A *repair* of `D` is a ⊆-maximal consistent subset: it picks exactly one
//! fact from every block (Section 2). We represent a repair as a choice
//! vector indexed by [`BlockId`]. [`RepairIter`] enumerates all repairs in
//! odometer order — exponential in general, which is exactly the behaviour
//! the brute-force baseline must expose.

use crate::{BlockId, Database, FactId};

/// One repair of a database: a choice of one fact per (live) block.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Repair {
    /// The live block ids, ascending. A database that has seen retractions
    /// can have gaps in its block-id space, so positions in `choice` are
    /// resolved through this list rather than by raw id.
    blocks: Vec<BlockId>,
    choice: Vec<FactId>,
}

impl Repair {
    /// Build a repair from an explicit per-block choice.
    ///
    /// # Panics
    /// Panics if the choice vector does not pick exactly one fact from every
    /// live block of `db`, in block order. Use [`Repair::try_new`] for
    /// validation.
    pub fn new(db: &Database, choice: Vec<FactId>) -> Repair {
        Repair::try_new(db, choice).expect("invalid repair choice")
    }

    /// Build a repair, validating the choice vector against the database.
    /// Choices are expected in [`Database::block_ids`] order.
    pub fn try_new(db: &Database, choice: Vec<FactId>) -> Result<Repair, crate::ModelError> {
        if choice.len() != db.block_count() {
            return Err(crate::ModelError::BadRepair {
                reason: "choice length differs from block count",
            });
        }
        let blocks: Vec<BlockId> = db.block_ids().collect();
        for (i, &id) in choice.iter().enumerate() {
            if db.block_of(id) != blocks[i] {
                return Err(crate::ModelError::BadRepair {
                    reason: "fact chosen for the wrong block",
                });
            }
        }
        Ok(Repair { blocks, choice })
    }

    /// The repair that picks the first fact of every block.
    pub fn first(db: &Database) -> Repair {
        Repair {
            blocks: db.block_ids().collect(),
            choice: db.block_ids().map(|b| db.block(b)[0]).collect(),
        }
    }

    /// The fact chosen for block `b`.
    ///
    /// # Panics
    /// Panics if `b` is not a block of the repair's database.
    pub fn chosen(&self, b: BlockId) -> FactId {
        let i = self
            .blocks
            .binary_search(&b)
            .expect("not a block of this repair");
        self.choice[i]
    }

    /// All chosen facts, in block order.
    pub fn facts(&self) -> &[FactId] {
        &self.choice
    }

    /// `true` iff this repair contains the fact.
    pub fn contains(&self, db: &Database, id: FactId) -> bool {
        self.chosen(db.block_of(id)) == id
    }

    /// The paper's `r[a → a′]`: the repair obtained by replacing the fact
    /// of `a`'s block with the key-equal fact `a′`.
    ///
    /// # Panics
    /// Panics if `a` and `a_new` are not key-equal (`a ∼ a′` is required).
    pub fn replace(&self, db: &Database, a: FactId, a_new: FactId) -> Repair {
        assert!(db.key_equal(a, a_new), "r[a → a′] requires a ∼ a′");
        let i = self
            .blocks
            .binary_search(&db.block_of(a))
            .expect("not a block of this repair");
        let mut choice = self.choice.clone();
        choice[i] = a_new;
        Repair {
            blocks: self.blocks.clone(),
            choice,
        }
    }

    /// Number of facts in the repair (= number of blocks of `db`).
    pub fn len(&self) -> usize {
        self.choice.len()
    }

    /// `true` iff the underlying database is empty.
    pub fn is_empty(&self) -> bool {
        self.choice.is_empty()
    }
}

/// Enumerates all repairs of a database in odometer order over blocks.
///
/// The number of repairs is the product of block sizes; use
/// [`Database::repair_count`] before iterating if you care about blow-up.
pub struct RepairIter<'a> {
    db: &'a Database,
    /// The live block ids being enumerated over, ascending.
    blocks: Vec<BlockId>,
    /// Per-block position of the current choice inside the block, or `None`
    /// when exhausted (or before the first call for an empty DB marker).
    cursor: Option<Vec<usize>>,
}

impl<'a> RepairIter<'a> {
    /// Start enumerating the repairs of `db`. Even the empty database has
    /// exactly one repair (the empty one).
    pub fn new(db: &'a Database) -> RepairIter<'a> {
        let blocks: Vec<BlockId> = db.block_ids().collect();
        RepairIter {
            db,
            cursor: Some(vec![0; blocks.len()]),
            blocks,
        }
    }
}

impl<'a> Iterator for RepairIter<'a> {
    type Item = Repair;

    fn next(&mut self) -> Option<Repair> {
        let cursor = self.cursor.as_mut()?;
        let repair = Repair {
            blocks: self.blocks.clone(),
            choice: cursor
                .iter()
                .enumerate()
                .map(|(b, &i)| self.db.block(self.blocks[b])[i])
                .collect(),
        };
        // Advance the odometer.
        let mut done = true;
        for (b, slot) in cursor.iter_mut().enumerate() {
            let size = self.db.block(self.blocks[b]).len();
            if *slot + 1 < size {
                *slot += 1;
                done = false;
                break;
            }
            *slot = 0;
        }
        if done {
            self.cursor = None;
        }
        Some(repair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fact, Signature};

    fn db(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn enumerates_all_repairs() {
        let d = db(&[
            ["a", "1"],
            ["a", "2"],
            ["b", "1"],
            ["b", "2"],
            ["b", "3"],
            ["c", "1"],
        ]);
        let repairs: Vec<_> = RepairIter::new(&d).collect();
        assert_eq!(repairs.len() as u128, d.repair_count());
        assert_eq!(repairs.len(), 6);
        // All distinct.
        let set: std::collections::HashSet<_> = repairs.iter().cloned().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn repairs_are_consistent_and_maximal() {
        let d = db(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        for r in RepairIter::new(&d) {
            // one fact per block
            assert_eq!(r.len(), d.block_count());
            for b in d.block_ids() {
                let chosen = r.chosen(b);
                assert_eq!(d.block_of(chosen), b);
            }
        }
    }

    #[test]
    fn empty_database_has_one_repair() {
        let d = Database::new(Signature::new(2, 1).unwrap());
        let repairs: Vec<_> = RepairIter::new(&d).collect();
        assert_eq!(repairs.len(), 1);
        assert!(repairs[0].is_empty());
    }

    #[test]
    fn consistent_database_has_one_repair() {
        let d = db(&[["a", "1"], ["b", "2"]]);
        assert_eq!(RepairIter::new(&d).count(), 1);
    }

    #[test]
    fn replace_swaps_within_block() {
        let d = db(&[["a", "1"], ["a", "2"]]);
        let a1 = d.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let a2 = d.id_of(&Fact::from_names(["a", "2"])).unwrap();
        let r = Repair::first(&d);
        assert!(r.contains(&d, a1));
        let r2 = r.replace(&d, a1, a2);
        assert!(r2.contains(&d, a2));
        assert!(!r2.contains(&d, a1));
    }

    #[test]
    #[should_panic(expected = "a ∼ a′")]
    fn replace_requires_key_equality() {
        let d = db(&[["a", "1"], ["b", "1"]]);
        let a = d.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let b = d.id_of(&Fact::from_names(["b", "1"])).unwrap();
        Repair::first(&d).replace(&d, a, b);
    }

    #[test]
    fn try_new_validates() {
        let d = db(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let a2 = d.id_of(&Fact::from_names(["a", "2"])).unwrap();
        let b1 = d.id_of(&Fact::from_names(["b", "1"])).unwrap();
        assert!(Repair::try_new(&d, vec![a2, b1]).is_ok());
        assert!(Repair::try_new(&d, vec![b1, a2]).is_err());
        assert!(Repair::try_new(&d, vec![a2]).is_err());
    }
}
