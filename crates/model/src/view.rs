//! Copy-free views over a subset of a database's blocks.
//!
//! The component solvers (Proposition 10.6) repeatedly need "the database
//! restricted to these blocks". Materialising that restriction with
//! [`Database::restrict`] clones every fact, re-hashes every key and
//! rebuilds the dedup index — measured at ~2.8× over the literal solver on
//! certain-early mixed instances (see `BASELINES.md`). A [`DbView`] is the
//! copy-free alternative: it borrows the parent database and carries only
//! the parent's block and fact *ids*, so building one is two `Vec`
//! allocations of ids and nothing else.
//!
//! Views are always **block-aligned**: they contain whole blocks, never a
//! strict subset of a block. That is the shape every consumer needs (a
//! repair picks one fact per block, and q-connected components are unions
//! of blocks), and it keeps `repair_count`/`is_consistent` meaningful.
//!
//! Fact and block ids seen through a view are the **parent's** ids — a
//! view performs no renumbering. Consumers that need dense local indices
//! (e.g. graph adjacency arrays) use [`DbView::local_fact_index`] /
//! [`DbView::local_block_index`], which are `O(1)` on a full view and a
//! binary search otherwise.

use crate::{BlockId, Database, Fact, FactId, Signature};

/// A borrowed, block-aligned view of a subset of a [`Database`].
///
/// Cheap to build (no fact is cloned, no element re-interned) and cheap to
/// consult (all lookups delegate to the parent). Fact and block ids seen
/// through a view are the **parent's** ids — no renumbering happens; use
/// the `local_*_index` methods for dense `0..len` indices.
#[derive(Clone, Debug)]
pub struct DbView<'a> {
    db: &'a Database,
    /// Parent block ids in ascending order.
    blocks: Vec<BlockId>,
    /// Parent fact ids in ascending order (exactly the facts of `blocks`).
    facts: Vec<FactId>,
}

impl Database {
    /// A view of the given blocks of this database (each block in full).
    /// Duplicate block ids are deduplicated.
    pub fn view_of_blocks(&self, blocks: impl IntoIterator<Item = BlockId>) -> DbView<'_> {
        let mut bs: Vec<BlockId> = blocks.into_iter().collect();
        bs.sort_unstable();
        bs.dedup();
        let mut facts: Vec<FactId> = Vec::with_capacity(bs.len());
        for &b in &bs {
            facts.extend_from_slice(self.block(b));
        }
        facts.sort_unstable();
        DbView {
            db: self,
            blocks: bs,
            facts,
        }
    }

    /// A view of the whole database. Local indices coincide with the
    /// parent ids, so consumers hit the `O(1)` index fast path.
    pub fn full_view(&self) -> DbView<'_> {
        DbView {
            db: self,
            blocks: self.block_ids().collect(),
            facts: self.fact_ids().collect(),
        }
    }
}

impl<'a> DbView<'a> {
    /// The database this view borrows from.
    pub fn parent(&self) -> &'a Database {
        self.db
    }

    /// The signature shared by all facts.
    pub fn signature(&self) -> &Signature {
        self.db.signature()
    }

    /// Number of facts in the view.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` iff the view holds no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// `true` iff the view covers every fact of the parent.
    pub fn is_full(&self) -> bool {
        self.facts.len() == self.db.len()
    }

    /// The parent block ids of the view, ascending.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Number of blocks in the view.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The parent fact ids of the view, ascending.
    pub fn fact_ids(&self) -> &[FactId] {
        &self.facts
    }

    /// Iterator over `(parent id, fact)` pairs of the view.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, &'a Fact)> + '_ {
        self.facts.iter().map(|&id| (id, self.db.fact(id)))
    }

    /// The fact with the given **parent** id (must belong to the view's
    /// parent; membership in the view itself is not checked).
    pub fn fact(&self, id: FactId) -> &'a Fact {
        self.db.fact(id)
    }

    /// The facts of a block, by **parent** block id.
    pub fn block(&self, b: BlockId) -> &'a [FactId] {
        self.db.block(b)
    }

    /// `true` iff the fact (parent id) belongs to the view.
    pub fn contains_fact(&self, id: FactId) -> bool {
        // Identity fast path only when raw ids are dense 0..len indices —
        // after a retraction the parent has tombstoned slots and full
        // coverage no longer implies identity.
        if self.is_full() && self.db.is_dense() {
            return id.idx() < self.db.len();
        }
        self.facts.binary_search(&id).is_ok()
    }

    /// Dense position of a view fact in `0..len()`, or `None` when the
    /// fact is not part of the view. `O(1)` on a full view of a dense
    /// (never-retracted-from) database.
    pub fn local_fact_index(&self, id: FactId) -> Option<usize> {
        if self.is_full() && self.db.is_dense() {
            return (id.idx() < self.db.len()).then(|| id.idx());
        }
        self.facts.binary_search(&id).ok()
    }

    /// Dense position of a view block in `0..block_count()`, or `None`
    /// when the block is not part of the view. `O(1)` on a full view of a
    /// dense database.
    pub fn local_block_index(&self, b: BlockId) -> Option<usize> {
        if self.blocks.len() == self.db.block_count() && self.db.is_dense() {
            return (b.idx() < self.blocks.len()).then(|| b.idx());
        }
        self.blocks.binary_search(&b).ok()
    }

    /// The number of repairs of the view (product of its block sizes,
    /// saturating at `u128::MAX`).
    pub fn repair_count(&self) -> u128 {
        let mut n: u128 = 1;
        for &b in &self.blocks {
            n = n.saturating_mul(self.db.block(b).len() as u128);
        }
        n
    }

    /// `true` iff every block of the view is a singleton.
    pub fn is_consistent(&self) -> bool {
        self.blocks.iter().all(|&b| self.db.block(b).len() == 1)
    }

    /// Materialise the view as a standalone [`Database`] (fact ids are
    /// **not** preserved). This is the old `restrict` copy — only for
    /// consumers that genuinely need an owned database, e.g. to insert
    /// more facts; the solvers operate on the view directly.
    pub fn to_database(&self) -> Database {
        self.db.restrict(self.facts.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Elem, Signature};

    fn db_2_1(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn view_of_blocks_keeps_parent_ids() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"], ["c", "9"]]);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let ba = db.block_of(a1);
        let v = db.view_of_blocks([ba]);
        assert_eq!(v.len(), 2);
        assert_eq!(v.block_count(), 1);
        assert!(v.contains_fact(a1));
        assert_eq!(v.local_fact_index(a1), Some(0));
        assert_eq!(v.fact(a1), db.fact(a1));
        assert!(!v.is_full());
        assert_eq!(v.repair_count(), 2);
        assert!(!v.is_consistent());
    }

    #[test]
    fn full_view_covers_everything_with_dense_indices() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let v = db.full_view();
        assert!(v.is_full());
        assert_eq!(v.len(), db.len());
        assert_eq!(v.block_count(), db.block_count());
        for (i, (id, f)) in v.facts().enumerate() {
            assert_eq!(v.local_fact_index(id), Some(i));
            assert_eq!(f, db.fact(id));
        }
        assert_eq!(v.repair_count(), db.repair_count());
    }

    #[test]
    fn duplicate_blocks_deduplicate() {
        let db = db_2_1(&[["a", "1"], ["b", "2"]]);
        let b0 = crate::BlockId(0);
        let v = db.view_of_blocks([b0, b0]);
        assert_eq!(v.block_count(), 1);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn non_member_lookups_return_none() {
        let db = db_2_1(&[["a", "1"], ["b", "2"], ["c", "3"]]);
        let b1 = db.id_of(&Fact::from_names(["b", "2"])).unwrap();
        let v = db.view_of_blocks([db.block_of(b1)]);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        assert!(!v.contains_fact(a1));
        assert_eq!(v.local_fact_index(a1), None);
        assert_eq!(v.local_block_index(db.block_of(a1)), None);
        assert_eq!(v.local_block_index(db.block_of(b1)), Some(0));
    }

    #[test]
    fn to_database_materialises_the_same_fact_set() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let v = db.view_of_blocks([db.block_of(a1)]);
        let owned = v.to_database();
        assert_eq!(owned.len(), 2);
        assert!(owned.contains(&Fact::from_names(["a", "1"])));
        assert!(owned.contains(&Fact::from_names(["a", "2"])));
    }

    #[test]
    fn full_view_over_tombstoned_db_uses_search_not_identity() {
        let mut db = db_2_1(&[["a", "1"], ["b", "2"], ["c", "3"]]);
        let rep = db
            .apply_delta(&[], &[Fact::from_names(["a", "1"])])
            .unwrap();
        let dead = rep.retracted[0];
        let v = db.full_view();
        assert!(v.is_full());
        assert_eq!(v.len(), 2);
        assert!(!v.contains_fact(dead));
        assert_eq!(v.local_fact_index(dead), None);
        for (i, (id, f)) in v.facts().enumerate() {
            assert_eq!(v.local_fact_index(id), Some(i));
            assert_eq!(f, db.fact(id));
        }
        for (i, &b) in v.blocks().iter().enumerate() {
            assert_eq!(v.local_block_index(b), Some(i));
        }
    }

    #[test]
    fn empty_view_is_consistent_with_one_repair() {
        let db = db_2_1(&[["a", "1"]]);
        let v = db.view_of_blocks(std::iter::empty());
        assert!(v.is_empty());
        assert!(v.is_consistent());
        assert_eq!(v.repair_count(), 1);
        let _ = Elem::named("touch"); // keep the interner import honest
    }
}
