//! # cqa-model — relational substrate for primary-key CQA
//!
//! The data model of *"A Dichotomy in the Complexity of Consistent Query
//! Answering for Two Atom Queries With Self-Join"* (PODS 2024), Section 2:
//!
//! * an infinite domain of [`Elem`]ents, realised as an interned term
//!   algebra (named / integer / pair / fresh constants),
//! * relation [`Signature`]s `[k, l]` — arity `k`, the first `l` positions
//!   form the primary key,
//! * [`Fact`]s `R(ē)` with key tuples, key sets and active domains,
//! * [`Database`]s — finite fact sets partitioned into *blocks* of
//!   key-equal facts, mutable in place via [`Database::apply_delta`]
//!   (id-stable insert/retract with a [`DeltaReport`] of touched blocks),
//! * [`Repair`]s — one fact per block — and exhaustive [`RepairIter`]
//!   enumeration,
//! * [`DbView`]s — borrowed, copy-free, block-aligned views of a subset
//!   of a database's blocks (what the per-component solvers consume
//!   instead of `restrict`-materialised sub-databases).
//!
//! Everything downstream (queries, solvers, tripaths, reductions) builds on
//! these types.
//!
//! The element store is process-global and **sharded** (16 `RwLock`
//! shards selected by payload hash, shard id encoded in the handle's low
//! bits), so concurrent fact construction from solver worker threads does
//! not serialise on a single lock; see the [`Elem`] module docs for the
//! locking discipline, and `ARCHITECTURE.md` at the workspace root for
//! how the crates fit together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod elem;
mod fact;
mod repair;
mod schema;
mod textline;
mod view;

pub use database::{BlockId, Database, DeltaReport, FactId};
pub use elem::{Elem, ElemData};
pub use fact::Fact;
pub use repair::{Repair, RepairIter};
pub use schema::{RelId, Signature};
pub use textline::{parse_fact_line, render_fact_line};
pub use view::DbView;

/// Errors produced by the model layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// Signature construction rejected.
    BadSignature {
        /// Requested arity.
        arity: usize,
        /// Requested key length.
        key_len: usize,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A fact's arity does not match the database signature.
    ArityMismatch {
        /// Arity the database expects.
        expected: usize,
        /// Arity the fact has.
        got: usize,
    },
    /// An explicit repair choice vector was invalid.
    BadRepair {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::BadSignature {
                arity,
                key_len,
                reason,
            } => {
                write!(f, "invalid signature [{arity}, {key_len}]: {reason}")
            }
            ModelError::ArityMismatch { expected, got } => {
                write!(f, "arity mismatch: expected {expected}, got {got}")
            }
            ModelError::BadRepair { reason } => write!(f, "invalid repair: {reason}"),
        }
    }
}

impl std::error::Error for ModelError {}
