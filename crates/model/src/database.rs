//! Databases, blocks and fact identifiers.
//!
//! A database is a finite set of facts (Section 2). It is partitioned into
//! *blocks*: maximal sets of key-equal facts. A database is *consistent*
//! when every block is a singleton. We maintain the block partition
//! incrementally under insertion, which makes block lookups O(1) and keeps
//! repair enumeration allocation-free per step.
//!
//! Databases are *live*: [`Database::apply_delta`] inserts and retracts
//! facts in place. Ids stay stable across deltas — retraction tombstones
//! the fact's slot instead of renumbering, so caches keyed by [`FactId`]
//! or [`BlockId`] (solution sets, antichains, component partitions) stay
//! valid for every untouched fact. See `docs/DELTAS.md`.

use crate::{Elem, Fact, ModelError, RelId, Signature};
use std::collections::HashMap;
use std::fmt;

/// Index of a fact inside its [`Database`]. Stable: insertion never
/// renumbers, and retraction leaves a tombstoned slot behind rather than
/// shifting later ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a block inside its [`Database`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

type BlockKey = (RelId, Box<[Elem]>);

/// Tombstone marker in `fact_block` for retracted fact slots.
const DEAD: BlockId = BlockId(u32::MAX);

/// Summary of one [`Database::apply_delta`] call: which facts actually
/// changed and which blocks were perturbed. No-op operations (inserting a
/// present fact, retracting an absent one) are not recorded — deltas are
/// set-semantic and idempotent.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaReport {
    /// Ids of facts this delta added, in insertion order.
    pub inserted: Vec<FactId>,
    /// Ids of facts this delta removed (the ids are now tombstones).
    pub retracted: Vec<FactId>,
    /// Blocks that gained or lost at least one fact, ascending, deduped.
    pub touched: Vec<BlockId>,
    /// Subset of `touched`: blocks that held no fact before the delta.
    pub fresh_blocks: Vec<BlockId>,
}

impl DeltaReport {
    /// `true` iff the delta changed nothing.
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.retracted.is_empty()
    }

    /// `true` iff the delta only populated brand-new blocks: nothing was
    /// retracted and no pre-existing block changed. `Cert_k` is monotone
    /// under this kind of growth, which is exactly when a warm-restarted
    /// fixpoint is sound (see `docs/DELTAS.md`).
    pub fn growth_only(&self) -> bool {
        self.retracted.is_empty() && self.touched.len() == self.fresh_blocks.len()
    }
}

/// An in-memory database of facts sharing one signature.
///
/// All relations in a database share the signature `[k, l]` — the paper's
/// setting has a single relation `R`, and its Section 4 detour uses two
/// relations `R1`, `R2` *of the same signature*.
#[derive(Clone)]
pub struct Database {
    sig: Signature,
    facts: Vec<Fact>,
    fact_block: Vec<BlockId>,
    blocks: Vec<Vec<FactId>>,
    by_key: HashMap<BlockKey, BlockId>,
    dedup: HashMap<Fact, FactId>,
    /// Facts minus tombstones. Equals `facts.len()` until a retraction.
    live_facts: usize,
    /// Blocks holding at least one live fact.
    live_blocks: usize,
}

impl Database {
    /// An empty database with the given signature.
    pub fn new(sig: Signature) -> Database {
        Database {
            sig,
            facts: Vec::new(),
            fact_block: Vec::new(),
            blocks: Vec::new(),
            by_key: HashMap::new(),
            dedup: HashMap::new(),
            live_facts: 0,
            live_blocks: 0,
        }
    }

    /// The signature shared by all facts.
    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    /// Insert a fact. Databases are sets: inserting an existing fact returns
    /// the existing id and does not change the database.
    ///
    /// # Errors
    /// Rejects facts whose arity differs from the database signature.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, ModelError> {
        if fact.arity() != self.sig.arity() {
            return Err(ModelError::ArityMismatch {
                expected: self.sig.arity(),
                got: fact.arity(),
            });
        }
        if let Some(&id) = self.dedup.get(&fact) {
            return Ok(id);
        }
        let id =
            FactId(u32::try_from(self.facts.len()).expect("database exhausted (> 2^32 facts)"));
        let key: BlockKey = (fact.rel(), fact.key(&self.sig).to_vec().into_boxed_slice());
        let block = match self.by_key.get(&key) {
            Some(&b) => {
                // The block may have been emptied by an earlier retraction;
                // refilling it revives the same BlockId.
                if self.blocks[b.idx()].is_empty() {
                    self.live_blocks += 1;
                }
                self.blocks[b.idx()].push(id);
                b
            }
            None => {
                let b = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
                assert!(b != DEAD, "too many blocks");
                self.blocks.push(vec![id]);
                self.by_key.insert(key, b);
                self.live_blocks += 1;
                b
            }
        };
        self.dedup.insert(fact.clone(), id);
        self.facts.push(fact);
        self.fact_block.push(block);
        self.live_facts += 1;
        Ok(id)
    }

    /// Apply a batch of insertions and retractions in place, retractions
    /// first. Returns a [`DeltaReport`] of what actually changed.
    ///
    /// Deltas are set-semantic: inserting a fact already present and
    /// retracting one that is absent are no-ops, so re-applying the same
    /// delta (e.g. a retried wire `update`) leaves the fact set unchanged.
    /// Retraction tombstones the fact's slot — every other [`FactId`] and
    /// [`BlockId`] keeps its meaning, which is what lets solution sets,
    /// antichain snapshots and component partitions be patched instead of
    /// rebuilt. An emptied block keeps its id and revives if a key-equal
    /// fact is inserted later.
    ///
    /// # Errors
    /// Rejects the whole delta — mutating nothing — if any fact's arity
    /// differs from the database signature.
    pub fn apply_delta(
        &mut self,
        inserts: &[Fact],
        retracts: &[Fact],
    ) -> Result<DeltaReport, ModelError> {
        for f in inserts.iter().chain(retracts) {
            if f.arity() != self.sig.arity() {
                return Err(ModelError::ArityMismatch {
                    expected: self.sig.arity(),
                    got: f.arity(),
                });
            }
        }
        // block -> whether it held a fact before this delta started.
        let mut touched: HashMap<BlockId, bool> = HashMap::new();
        let mut report = DeltaReport::default();
        for f in retracts {
            let Some(&id) = self.dedup.get(f) else {
                continue;
            };
            let b = self.fact_block[id.idx()];
            touched.entry(b).or_insert(true);
            self.dedup.remove(f);
            let members = &mut self.blocks[b.idx()];
            members.retain(|&m| m != id);
            if members.is_empty() {
                self.live_blocks -= 1;
            }
            self.fact_block[id.idx()] = DEAD;
            self.live_facts -= 1;
            report.retracted.push(id);
        }
        for f in inserts {
            if self.dedup.contains_key(f) {
                continue;
            }
            let key: BlockKey = (f.rel(), f.key(&self.sig).to_vec().into_boxed_slice());
            let was_nonempty = self
                .by_key
                .get(&key)
                .is_some_and(|b| !self.blocks[b.idx()].is_empty());
            let id = self.insert(f.clone())?;
            touched
                .entry(self.fact_block[id.idx()])
                .or_insert(was_nonempty);
            report.inserted.push(id);
        }
        let mut ts: Vec<(BlockId, bool)> = touched.into_iter().collect();
        ts.sort_unstable_by_key(|&(b, _)| b);
        for (b, was_nonempty) in ts {
            report.touched.push(b);
            if !was_nonempty {
                report.fresh_blocks.push(b);
            }
        }
        Ok(report)
    }

    /// Insert many facts; returns their ids in order.
    pub fn insert_all(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Vec<FactId>, ModelError> {
        facts.into_iter().map(|f| self.insert(f)).collect()
    }

    /// Number of live facts (the paper's database *size* `n`).
    pub fn len(&self) -> usize {
        self.live_facts
    }

    /// `true` iff the database has no live facts.
    pub fn is_empty(&self) -> bool {
        self.live_facts == 0
    }

    /// Number of live (non-empty) blocks.
    pub fn block_count(&self) -> usize {
        self.live_blocks
    }

    /// Upper bound of the fact-id space: live facts plus tombstoned slots
    /// left behind by retractions. Use this — not [`Database::len`] — to
    /// size arrays indexed by raw [`FactId`] values.
    pub fn fact_slots(&self) -> usize {
        self.facts.len()
    }

    /// Upper bound of the block-id space, counting emptied blocks.
    pub fn block_slots(&self) -> usize {
        self.blocks.len()
    }

    /// `true` while no retraction has left holes: every fact slot is live
    /// and every block non-empty, so raw ids are dense `0..len` indices.
    pub fn is_dense(&self) -> bool {
        self.live_facts == self.facts.len() && self.live_blocks == self.blocks.len()
    }

    /// `true` iff the id refers to a live (non-retracted) fact.
    pub fn is_live(&self, id: FactId) -> bool {
        self.fact_block.get(id.idx()).is_some_and(|&b| b != DEAD)
    }

    /// The fact with the given id. A retracted id still resolves to its
    /// old fact value — the slot is kept so ids stay stable; check
    /// [`Database::is_live`] when liveness matters.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.idx()]
    }

    /// Iterator over live `(id, fact)` pairs.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.fact_block[i] != DEAD)
            .map(|(i, f)| (FactId(i as u32), f))
    }

    /// All live fact ids, ascending.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32)
            .map(FactId)
            .filter(|id| self.fact_block[id.idx()] != DEAD)
    }

    /// The id of `fact`, if present.
    pub fn id_of(&self, fact: &Fact) -> Option<FactId> {
        self.dedup.get(fact).copied()
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.dedup.contains_key(fact)
    }

    /// The block a fact belongs to. The id must be live.
    pub fn block_of(&self, id: FactId) -> BlockId {
        let b = self.fact_block[id.idx()];
        debug_assert!(b != DEAD, "block_of on a retracted fact id");
        b
    }

    /// The facts of a block.
    pub fn block(&self, b: BlockId) -> &[FactId] {
        &self.blocks[b.idx()]
    }

    /// Iterator over all live (non-empty) block ids, ascending.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32)
            .map(BlockId)
            .filter(|b| !self.blocks[b.idx()].is_empty())
    }

    /// Key-equality of two facts in this database, `a ∼ b`. Both ids must
    /// be live.
    pub fn key_equal(&self, a: FactId, b: FactId) -> bool {
        debug_assert!(self.is_live(a) && self.is_live(b));
        self.fact_block[a.idx()] == self.fact_block[b.idx()]
    }

    /// `true` iff no block holds two distinct facts (Section 2).
    pub fn is_consistent(&self) -> bool {
        self.blocks.iter().all(|b| b.len() <= 1)
    }

    /// Approximate resident size of this database in bytes, for memory
    /// budgeting (the `cqa serve` session manager evicts by this number).
    /// Counts the fact vector (one interned `u32` element handle per
    /// position plus per-fact `Vec`/dedup-entry overhead) and the block
    /// index; the global element interner is shared by every database of
    /// the process, so it is deliberately *not* attributed here. The
    /// estimate is deterministic in `(facts, arity, blocks)` and grows
    /// monotonically with insertions.
    pub fn approx_bytes(&self) -> usize {
        // Per fact: arity interned handles, the Fact's Vec header, its
        // dedup map entry and its fact_block slot; per block: the Vec of
        // member FactIds plus the key index entry.
        let per_fact = self.sig.arity() * 4 + 24 + 48 + 4;
        let per_block = 24 + 48;
        let member_ids: usize = self.blocks.iter().map(|b| b.len() * 4).sum();
        self.facts.len() * per_fact + self.blocks.len() * per_block + member_ids
    }

    /// The number of repairs, i.e. the product of block sizes, saturating at
    /// `u128::MAX`. Can be astronomically large — that is the point of the
    /// paper.
    pub fn repair_count(&self) -> u128 {
        let mut n: u128 = 1;
        for b in &self.blocks {
            if !b.is_empty() {
                n = n.saturating_mul(b.len() as u128);
            }
        }
        n
    }

    /// A new database containing exactly the given facts of this one
    /// (sub-database). Fact ids are **not** preserved.
    pub fn restrict(&self, ids: impl IntoIterator<Item = FactId>) -> Database {
        let mut sub = Database::new(self.sig);
        for id in ids {
            sub.insert(self.fact(id).clone()).expect("same signature");
        }
        sub
    }

    /// Merge all facts of `other` into `self`. Signatures must agree.
    pub fn absorb(&mut self, other: &Database) -> Result<(), ModelError> {
        if other.sig != self.sig {
            return Err(ModelError::ArityMismatch {
                expected: self.sig.arity(),
                got: other.sig.arity(),
            });
        }
        for (_, f) in other.facts() {
            self.insert(f.clone())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database {} ({} facts, {} blocks):",
            self.sig,
            self.len(),
            self.block_count()
        )?;
        for b in self.block_ids() {
            write!(f, "  block {}:", b.0)?;
            for &id in self.block(b) {
                write!(f, " {}", self.fact(id))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_2_1(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn blocks_partition_by_key() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.block_count(), 2);
        assert!(!db.is_consistent());
        assert_eq!(db.repair_count(), 2);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let a2 = db.id_of(&Fact::from_names(["a", "2"])).unwrap();
        let b1 = db.id_of(&Fact::from_names(["b", "1"])).unwrap();
        assert!(db.key_equal(a1, a2));
        assert!(!db.key_equal(a1, b1));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut db = db_2_1(&[["a", "1"]]);
        let id1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let id2 = db.insert(Fact::from_names(["a", "1"])).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn different_relations_never_share_blocks() {
        let sig = Signature::new(2, 1).unwrap();
        let mut db = Database::new(sig);
        let k = Elem::named("k");
        let v = Elem::named("v");
        db.insert(Fact::new(RelId::R1, vec![k, v])).unwrap();
        db.insert(Fact::new(RelId::R2, vec![k, v])).unwrap();
        assert_eq!(db.block_count(), 2);
        assert!(db.is_consistent());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        let err = db.insert(Fact::from_names(["a", "b"])).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ArityMismatch {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn empty_key_single_block() {
        let mut db = Database::new(Signature::new(1, 0).unwrap());
        db.insert(Fact::from_names(["a"])).unwrap();
        db.insert(Fact::from_names(["b"])).unwrap();
        db.insert(Fact::from_names(["c"])).unwrap();
        assert_eq!(db.block_count(), 1);
        assert_eq!(db.repair_count(), 3);
    }

    #[test]
    fn repair_count_saturates() {
        // 2^130 blocks would overflow u128; simulate with many 2-fact blocks.
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for i in 0..130 {
            db.insert(Fact::r(vec![Elem::int(i), Elem::named("x")]))
                .unwrap();
            db.insert(Fact::r(vec![Elem::int(i), Elem::named("y")]))
                .unwrap();
        }
        assert_eq!(db.repair_count(), u128::MAX);
    }

    #[test]
    fn restrict_builds_sub_database() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let b1 = db.id_of(&Fact::from_names(["b", "1"])).unwrap();
        let sub = db.restrict([a1, b1]);
        assert_eq!(sub.len(), 2);
        assert!(sub.is_consistent());
    }

    #[test]
    fn absorb_unions_fact_sets() {
        let mut d1 = db_2_1(&[["a", "1"]]);
        let d2 = db_2_1(&[["a", "1"], ["a", "2"]]);
        d1.absorb(&d2).unwrap();
        assert_eq!(d1.len(), 2);
        assert_eq!(d1.block_count(), 1);
    }

    #[test]
    fn apply_delta_reports_touched_and_fresh_blocks() {
        let mut db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let rep = db
            .apply_delta(
                &[
                    Fact::from_names(["a", "3"]), // existing block
                    Fact::from_names(["c", "1"]), // brand-new block
                ],
                &[Fact::from_names(["b", "1"])],
            )
            .unwrap();
        assert_eq!(rep.inserted.len(), 2);
        assert_eq!(rep.retracted.len(), 1);
        assert_eq!(rep.touched.len(), 3);
        assert_eq!(rep.fresh_blocks.len(), 1);
        assert!(!rep.growth_only());
        assert_eq!(db.len(), 4);
        assert_eq!(db.block_count(), 2); // b's block is now empty
        assert_eq!(db.block_slots(), 3);
        assert!(!db.is_dense());
    }

    #[test]
    fn apply_delta_is_idempotent() {
        let mut db = db_2_1(&[["a", "1"], ["b", "1"]]);
        let ins = [Fact::from_names(["c", "1"])];
        let del = [Fact::from_names(["b", "1"])];
        db.apply_delta(&ins, &del).unwrap();
        let facts_after: Vec<Fact> = db.facts().map(|(_, f)| f.clone()).collect();
        let rep2 = db.apply_delta(&ins, &del).unwrap();
        assert!(rep2.is_noop());
        let facts_again: Vec<Fact> = db.facts().map(|(_, f)| f.clone()).collect();
        assert_eq!(facts_after, facts_again);
    }

    #[test]
    fn retraction_keeps_surviving_ids_stable() {
        let mut db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let a2 = db.id_of(&Fact::from_names(["a", "2"])).unwrap();
        let b1 = db.id_of(&Fact::from_names(["b", "1"])).unwrap();
        let rep = db
            .apply_delta(&[], &[Fact::from_names(["a", "1"])])
            .unwrap();
        let a1 = rep.retracted[0];
        assert!(!db.is_live(a1));
        assert!(db.is_live(a2));
        assert_eq!(db.id_of(&Fact::from_names(["a", "2"])), Some(a2));
        assert_eq!(db.id_of(&Fact::from_names(["b", "1"])), Some(b1));
        assert_eq!(db.len(), 2);
        assert_eq!(db.fact_slots(), 3);
        let ids: Vec<FactId> = db.fact_ids().collect();
        assert_eq!(ids, vec![a2, b1]);
        assert!(db.is_consistent());
        assert_eq!(db.repair_count(), 1);
    }

    #[test]
    fn emptied_block_revives_with_its_old_id() {
        let mut db = db_2_1(&[["a", "1"], ["b", "1"]]);
        let old_block = db.block_of(db.id_of(&Fact::from_names(["a", "1"])).unwrap());
        db.apply_delta(&[], &[Fact::from_names(["a", "1"])])
            .unwrap();
        assert_eq!(db.block_count(), 1);
        let rep = db
            .apply_delta(&[Fact::from_names(["a", "9"])], &[])
            .unwrap();
        assert_eq!(db.block_of(rep.inserted[0]), old_block);
        // The block existed before (as an empty shell) but held no fact, so
        // for warm-restart purposes it counts as fresh.
        assert_eq!(rep.fresh_blocks, vec![old_block]);
        assert!(rep.growth_only());
    }

    #[test]
    fn growth_only_rejects_existing_block_touches() {
        let mut db = db_2_1(&[["a", "1"]]);
        let grow = db
            .apply_delta(&[Fact::from_names(["b", "7"])], &[])
            .unwrap();
        assert!(grow.growth_only());
        let touch = db
            .apply_delta(&[Fact::from_names(["a", "2"])], &[])
            .unwrap();
        assert!(!touch.growth_only());
    }

    #[test]
    fn apply_delta_rejects_bad_arity_atomically() {
        let mut db = db_2_1(&[["a", "1"]]);
        let err = db
            .apply_delta(
                &[Fact::from_names(["x", "y"])],
                &[Fact::from_names(["a", "1", "oops"])],
            )
            .unwrap_err();
        assert!(matches!(err, ModelError::ArityMismatch { .. }));
        assert_eq!(db.len(), 1);
        assert!(!db.contains(&Fact::from_names(["x", "y"])));
    }

    #[test]
    fn approx_bytes_is_monotone_and_scales_with_facts() {
        let empty = Database::new(Signature::new(2, 1).unwrap());
        assert_eq!(empty.approx_bytes(), 0);
        let small = db_2_1(&[["a", "1"]]);
        let big = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"], ["c", "9"]]);
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
        // Deterministic in the database shape.
        assert_eq!(
            big.approx_bytes(),
            db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"], ["c", "9"]]).approx_bytes()
        );
    }
}
