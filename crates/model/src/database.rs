//! Databases, blocks and fact identifiers.
//!
//! A database is a finite set of facts (Section 2). It is partitioned into
//! *blocks*: maximal sets of key-equal facts. A database is *consistent*
//! when every block is a singleton. We maintain the block partition
//! incrementally under insertion, which makes block lookups O(1) and keeps
//! repair enumeration allocation-free per step.

use crate::{Elem, Fact, ModelError, RelId, Signature};
use std::collections::HashMap;
use std::fmt;

/// Index of a fact inside its [`Database`]. Stable: facts are append-only.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

impl FactId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Index of a block inside its [`Database`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The index as `usize`.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

type BlockKey = (RelId, Box<[Elem]>);

/// An in-memory database of facts sharing one signature.
///
/// All relations in a database share the signature `[k, l]` — the paper's
/// setting has a single relation `R`, and its Section 4 detour uses two
/// relations `R1`, `R2` *of the same signature*.
#[derive(Clone)]
pub struct Database {
    sig: Signature,
    facts: Vec<Fact>,
    fact_block: Vec<BlockId>,
    blocks: Vec<Vec<FactId>>,
    by_key: HashMap<BlockKey, BlockId>,
    dedup: HashMap<Fact, FactId>,
}

impl Database {
    /// An empty database with the given signature.
    pub fn new(sig: Signature) -> Database {
        Database {
            sig,
            facts: Vec::new(),
            fact_block: Vec::new(),
            blocks: Vec::new(),
            by_key: HashMap::new(),
            dedup: HashMap::new(),
        }
    }

    /// The signature shared by all facts.
    pub fn signature(&self) -> &Signature {
        &self.sig
    }

    /// Insert a fact. Databases are sets: inserting an existing fact returns
    /// the existing id and does not change the database.
    ///
    /// # Errors
    /// Rejects facts whose arity differs from the database signature.
    pub fn insert(&mut self, fact: Fact) -> Result<FactId, ModelError> {
        if fact.arity() != self.sig.arity() {
            return Err(ModelError::ArityMismatch {
                expected: self.sig.arity(),
                got: fact.arity(),
            });
        }
        if let Some(&id) = self.dedup.get(&fact) {
            return Ok(id);
        }
        let id =
            FactId(u32::try_from(self.facts.len()).expect("database exhausted (> 2^32 facts)"));
        let key: BlockKey = (fact.rel(), fact.key(&self.sig).to_vec().into_boxed_slice());
        let block = match self.by_key.get(&key) {
            Some(&b) => {
                self.blocks[b.idx()].push(id);
                b
            }
            None => {
                let b = BlockId(u32::try_from(self.blocks.len()).expect("too many blocks"));
                self.blocks.push(vec![id]);
                self.by_key.insert(key, b);
                b
            }
        };
        self.dedup.insert(fact.clone(), id);
        self.facts.push(fact);
        self.fact_block.push(block);
        Ok(id)
    }

    /// Insert many facts; returns their ids in order.
    pub fn insert_all(
        &mut self,
        facts: impl IntoIterator<Item = Fact>,
    ) -> Result<Vec<FactId>, ModelError> {
        facts.into_iter().map(|f| self.insert(f)).collect()
    }

    /// Number of facts (the paper's database *size* `n`).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// `true` iff the database has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The fact with the given id.
    pub fn fact(&self, id: FactId) -> &Fact {
        &self.facts[id.idx()]
    }

    /// Iterator over `(id, fact)` pairs.
    pub fn facts(&self) -> impl Iterator<Item = (FactId, &Fact)> {
        self.facts
            .iter()
            .enumerate()
            .map(|(i, f)| (FactId(i as u32), f))
    }

    /// All fact ids.
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        (0..self.facts.len() as u32).map(FactId)
    }

    /// The id of `fact`, if present.
    pub fn id_of(&self, fact: &Fact) -> Option<FactId> {
        self.dedup.get(fact).copied()
    }

    /// `true` iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.dedup.contains_key(fact)
    }

    /// The block a fact belongs to.
    pub fn block_of(&self, id: FactId) -> BlockId {
        self.fact_block[id.idx()]
    }

    /// The facts of a block.
    pub fn block(&self, b: BlockId) -> &[FactId] {
        &self.blocks[b.idx()]
    }

    /// Iterator over all block ids.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Key-equality of two facts in this database, `a ∼ b`.
    pub fn key_equal(&self, a: FactId, b: FactId) -> bool {
        self.fact_block[a.idx()] == self.fact_block[b.idx()]
    }

    /// `true` iff no block holds two distinct facts (Section 2).
    pub fn is_consistent(&self) -> bool {
        self.blocks.iter().all(|b| b.len() == 1)
    }

    /// Approximate resident size of this database in bytes, for memory
    /// budgeting (the `cqa serve` session manager evicts by this number).
    /// Counts the fact vector (one interned `u32` element handle per
    /// position plus per-fact `Vec`/dedup-entry overhead) and the block
    /// index; the global element interner is shared by every database of
    /// the process, so it is deliberately *not* attributed here. The
    /// estimate is deterministic in `(facts, arity, blocks)` and grows
    /// monotonically with insertions.
    pub fn approx_bytes(&self) -> usize {
        // Per fact: arity interned handles, the Fact's Vec header, its
        // dedup map entry and its fact_block slot; per block: the Vec of
        // member FactIds plus the key index entry.
        let per_fact = self.sig.arity() * 4 + 24 + 48 + 4;
        let per_block = 24 + 48;
        let member_ids: usize = self.blocks.iter().map(|b| b.len() * 4).sum();
        self.facts.len() * per_fact + self.blocks.len() * per_block + member_ids
    }

    /// The number of repairs, i.e. the product of block sizes, saturating at
    /// `u128::MAX`. Can be astronomically large — that is the point of the
    /// paper.
    pub fn repair_count(&self) -> u128 {
        let mut n: u128 = 1;
        for b in &self.blocks {
            n = n.saturating_mul(b.len() as u128);
        }
        n
    }

    /// A new database containing exactly the given facts of this one
    /// (sub-database). Fact ids are **not** preserved.
    pub fn restrict(&self, ids: impl IntoIterator<Item = FactId>) -> Database {
        let mut sub = Database::new(self.sig);
        for id in ids {
            sub.insert(self.fact(id).clone()).expect("same signature");
        }
        sub
    }

    /// Merge all facts of `other` into `self`. Signatures must agree.
    pub fn absorb(&mut self, other: &Database) -> Result<(), ModelError> {
        if other.sig != self.sig {
            return Err(ModelError::ArityMismatch {
                expected: self.sig.arity(),
                got: other.sig.arity(),
            });
        }
        for (_, f) in other.facts() {
            self.insert(f.clone())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Database {} ({} facts, {} blocks):",
            self.sig,
            self.len(),
            self.block_count()
        )?;
        for b in self.block_ids() {
            write!(f, "  block {}:", b.0)?;
            for &id in self.block(b) {
                write!(f, " {}", self.fact(id))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db_2_1(rows: &[[&str; 2]]) -> Database {
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for row in rows {
            db.insert(Fact::from_names(row.iter().copied())).unwrap();
        }
        db
    }

    #[test]
    fn blocks_partition_by_key() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        assert_eq!(db.len(), 3);
        assert_eq!(db.block_count(), 2);
        assert!(!db.is_consistent());
        assert_eq!(db.repair_count(), 2);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let a2 = db.id_of(&Fact::from_names(["a", "2"])).unwrap();
        let b1 = db.id_of(&Fact::from_names(["b", "1"])).unwrap();
        assert!(db.key_equal(a1, a2));
        assert!(!db.key_equal(a1, b1));
    }

    #[test]
    fn insert_is_idempotent() {
        let mut db = db_2_1(&[["a", "1"]]);
        let id1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let id2 = db.insert(Fact::from_names(["a", "1"])).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn different_relations_never_share_blocks() {
        let sig = Signature::new(2, 1).unwrap();
        let mut db = Database::new(sig);
        let k = Elem::named("k");
        let v = Elem::named("v");
        db.insert(Fact::new(RelId::R1, vec![k, v])).unwrap();
        db.insert(Fact::new(RelId::R2, vec![k, v])).unwrap();
        assert_eq!(db.block_count(), 2);
        assert!(db.is_consistent());
    }

    #[test]
    fn rejects_arity_mismatch() {
        let mut db = Database::new(Signature::new(3, 1).unwrap());
        let err = db.insert(Fact::from_names(["a", "b"])).unwrap_err();
        assert!(matches!(
            err,
            ModelError::ArityMismatch {
                expected: 3,
                got: 2
            }
        ));
    }

    #[test]
    fn empty_key_single_block() {
        let mut db = Database::new(Signature::new(1, 0).unwrap());
        db.insert(Fact::from_names(["a"])).unwrap();
        db.insert(Fact::from_names(["b"])).unwrap();
        db.insert(Fact::from_names(["c"])).unwrap();
        assert_eq!(db.block_count(), 1);
        assert_eq!(db.repair_count(), 3);
    }

    #[test]
    fn repair_count_saturates() {
        // 2^130 blocks would overflow u128; simulate with many 2-fact blocks.
        let mut db = Database::new(Signature::new(2, 1).unwrap());
        for i in 0..130 {
            db.insert(Fact::r(vec![Elem::int(i), Elem::named("x")]))
                .unwrap();
            db.insert(Fact::r(vec![Elem::int(i), Elem::named("y")]))
                .unwrap();
        }
        assert_eq!(db.repair_count(), u128::MAX);
    }

    #[test]
    fn restrict_builds_sub_database() {
        let db = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"]]);
        let a1 = db.id_of(&Fact::from_names(["a", "1"])).unwrap();
        let b1 = db.id_of(&Fact::from_names(["b", "1"])).unwrap();
        let sub = db.restrict([a1, b1]);
        assert_eq!(sub.len(), 2);
        assert!(sub.is_consistent());
    }

    #[test]
    fn absorb_unions_fact_sets() {
        let mut d1 = db_2_1(&[["a", "1"]]);
        let d2 = db_2_1(&[["a", "1"], ["a", "2"]]);
        d1.absorb(&d2).unwrap();
        assert_eq!(d1.len(), 2);
        assert_eq!(d1.block_count(), 1);
    }

    #[test]
    fn approx_bytes_is_monotone_and_scales_with_facts() {
        let empty = Database::new(Signature::new(2, 1).unwrap());
        assert_eq!(empty.approx_bytes(), 0);
        let small = db_2_1(&[["a", "1"]]);
        let big = db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"], ["c", "9"]]);
        assert!(small.approx_bytes() > 0);
        assert!(big.approx_bytes() > small.approx_bytes());
        // Deterministic in the database shape.
        assert_eq!(
            big.approx_bytes(),
            db_2_1(&[["a", "1"], ["a", "2"], ["b", "1"], ["c", "9"]]).approx_bytes()
        );
    }
}
