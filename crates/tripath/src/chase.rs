//! Most-general chase steps used by the tripath existence search.
//!
//! The search builds candidate tripaths over *concrete* fresh elements: a
//! most-general instantiation of a solution step binds only what unification
//! forces and fills every remaining variable with a fresh element. Any
//! concrete tripath arm is a homomorphic image of such a chain (fixing the
//! center elements), and the tripath conditions are *non*-inclusion
//! constraints (`g(e) ⊈ key(u)`), which transfer from instances to the
//! most-general chain — so chasing most-general steps loses no witnesses
//! for a fixed sequence of orientation choices.

use cqa_model::{Elem, Fact};
use cqa_query::{Query, Subst};
use std::collections::BTreeSet;
use std::collections::HashSet;

/// Which atom of `q = A B` a fact is matched by.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// The first atom.
    A,
    /// The second atom.
    B,
}

impl Role {
    /// The other role.
    pub fn other(self) -> Role {
        match self {
            Role::A => Role::B,
            Role::B => Role::A,
        }
    }

    /// The atom of `q` this role denotes.
    pub fn atom(self, q: &Query) -> &cqa_query::Atom {
        match self {
            Role::A => q.a(),
            Role::B => q.b(),
        }
    }
}

/// Instantiate one solution of `q` most-generally, subject to the key of
/// the `role` atom being the given tuple. Returns `(role_fact, other_fact)`
/// — the facts matched by `role` and by the other atom — or `None` when the
/// atom's key pattern conflicts with the requested key tuple (repeated key
/// variables demanding distinct elements).
pub fn key_bound_solution(q: &Query, role: Role, key: &[Elem]) -> Option<(Fact, Fact)> {
    let atom = role.atom(q);
    let mut mu = Subst::new();
    for (i, e) in key.iter().enumerate() {
        if !mu.bind(atom.at(i).clone(), *e) {
            return None;
        }
    }
    let role_fact = mu.apply_with(atom, |_| Elem::fresh());
    let other_fact = mu.apply_with(role.other().atom(q), |_| Elem::fresh());
    Some((role_fact, other_fact))
}

/// One step of an arm chain: the in-block `partner` (key-equal to the
/// previous frontier) and the new `frontier` fact in a fresh block, with
/// `q{partner frontier}` holding by construction.
#[derive(Clone, Debug)]
pub struct ArmStep {
    /// The fact added to the current frontier's block.
    pub partner: Fact,
    /// The next frontier fact (in a new block).
    pub frontier: Fact,
    /// Orientation that produced the step: the role matched by `partner`.
    pub partner_role: Role,
}

/// A terminating arm: a (possibly empty) chain of steps whose final
/// frontier satisfies the leaf/root condition `g ⊈ key(frontier)`.
#[derive(Clone, Debug, Default)]
pub struct ArmChain {
    /// The steps, outermost last.
    pub steps: Vec<ArmStep>,
}

impl ArmChain {
    /// The final frontier fact, or `None` for the empty chain (the start
    /// fact itself is the extremal fact).
    pub fn last_frontier(&self) -> Option<&Fact> {
        self.steps.last().map(|s| &s.frontier)
    }
}

/// Limits for [`arm_chains`].
#[derive(Clone, Copy, Debug)]
pub struct ArmConfig {
    /// Maximum chain length explored.
    pub max_depth: usize,
    /// Maximum number of expansion states visited.
    pub max_states: usize,
    /// Maximum number of terminating chains collected.
    pub max_chains: usize,
}

impl Default for ArmConfig {
    fn default() -> ArmConfig {
        ArmConfig {
            max_depth: 10,
            max_states: 4_000,
            max_chains: 12,
        }
    }
}

/// Canonical abstraction of a frontier fact: `g`-elements keep their
/// identity (they drive the termination test and all future key checks
/// against `g`); every other element is renamed to its first-occurrence
/// index. Chains reaching the same abstract state expand identically, so
/// the search memoises on it.
fn abstract_state(fact: &Fact, g: &BTreeSet<Elem>) -> Vec<i64> {
    let mut local: Vec<Elem> = Vec::new();
    fact.tuple()
        .iter()
        .map(|e| {
            if g.contains(e) {
                // Stable positive code per g element.
                let gi = g.iter().position(|x| x == e).expect("in g") as i64;
                gi + 1
            } else {
                let li = match local.iter().position(|x| x == e) {
                    Some(i) => i,
                    None => {
                        local.push(*e);
                        local.len() - 1
                    }
                } as i64;
                -(li + 1)
            }
        })
        .collect()
}

/// Does the frontier fact qualify as a root/leaf fact: `g ⊈ key(t)`?
pub fn is_terminal(q: &Query, fact: &Fact, g: &BTreeSet<Elem>) -> bool {
    !g.is_subset(&fact.key_set(q.signature()))
}

/// Result of an arm search.
#[derive(Clone, Debug, Default)]
pub struct ArmSearch {
    /// Terminating chains found, shortest first.
    pub chains: Vec<ArmChain>,
    /// `true` when the search explored every reachable abstract state
    /// within the depth limit (so an empty `chains` is *evidence* of
    /// non-termination up to that depth, not a budget artefact).
    pub complete: bool,
}

/// Enumerate terminating arm chains starting from `start` (which sits in an
/// existing block), avoiding blocks whose keys are in `used_keys`. Chains
/// are returned shortest-first; chains that extend past earlier terminals
/// are included (niceness sometimes requires longer arms).
pub fn arm_chains(
    q: &Query,
    start: &Fact,
    g: &BTreeSet<Elem>,
    used_keys: &HashSet<Vec<Elem>>,
    cfg: ArmConfig,
) -> ArmSearch {
    let sig = q.signature();
    let mut out = Vec::new();
    let mut complete = true;
    if is_terminal(q, start, g) {
        out.push(ArmChain::default());
    }
    // BFS over (frontier, chain); memoised on the abstract state — a state
    // seen at a shorter depth dominates.
    let mut queue: std::collections::VecDeque<(Fact, Vec<ArmStep>)> =
        std::collections::VecDeque::new();
    queue.push_back((start.clone(), Vec::new()));
    let mut seen: HashSet<Vec<i64>> = HashSet::new();
    seen.insert(abstract_state(start, g));
    let mut states = 0usize;

    while let Some((frontier, chain)) = queue.pop_front() {
        if chain.len() >= cfg.max_depth {
            complete = false;
            continue;
        }
        if out.len() >= cfg.max_chains {
            complete = false;
            break;
        }
        states += 1;
        if states > cfg.max_states {
            complete = false;
            break;
        }
        let key = frontier.key(sig).to_vec();
        for role in [Role::A, Role::B] {
            let Some((partner, next)) = key_bound_solution(q, role, &key) else {
                continue;
            };
            // The partner must be a *second* fact of the frontier's block.
            if partner == frontier {
                continue;
            }
            debug_assert!(partner.key_equal(&frontier, sig));
            // The next frontier must open a genuinely new block.
            let next_key = next.key(sig).to_vec();
            if next_key == key || used_keys.contains(&next_key) {
                continue;
            }
            let step = ArmStep {
                partner: partner.clone(),
                frontier: next.clone(),
                partner_role: role,
            };
            let mut new_chain = chain.clone();
            new_chain.push(step);
            if is_terminal(q, &next, g) {
                out.push(ArmChain {
                    steps: new_chain.clone(),
                });
                if out.len() >= cfg.max_chains {
                    return ArmSearch {
                        chains: out,
                        complete: false,
                    };
                }
            }
            let st = abstract_state(&next, g);
            if seen.insert(st) {
                queue.push_back((next, new_chain));
            }
        }
    }
    ArmSearch {
        chains: out,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::examples;

    fn named(fact_names: &[&str]) -> Fact {
        Fact::from_names(fact_names.iter().copied())
    }

    #[test]
    fn key_bound_solution_q2() {
        // q2 = R(x u | x y) R(u y | x z). Bind A's key to (a, b):
        // role fact = R(a b | a *), other = R(b * | a *).
        let q = examples::q2();
        let key = [Elem::named("a"), Elem::named("b")];
        let (fa, fb) = key_bound_solution(&q, Role::A, &key).unwrap();
        assert_eq!(fa.at(0), Elem::named("a"));
        assert_eq!(fa.at(1), Elem::named("b"));
        assert_eq!(fa.at(2), Elem::named("a")); // x repeats
        assert_eq!(fb.at(0), Elem::named("b")); // u
        assert_eq!(fb.at(1), fa.at(3)); // y shared
        assert_eq!(fb.at(2), Elem::named("a")); // x
        assert!(cqa_query::is_solution(&q, &fa, &fb));
    }

    #[test]
    fn key_bound_solution_conflict() {
        // q4 = R(x x | u v) R(x y | u x): A's key repeats x, so a key
        // tuple (a, b) with a ≠ b cannot be matched.
        let q = examples::q4();
        let key = [Elem::named("a"), Elem::named("b")];
        assert!(key_bound_solution(&q, Role::A, &key).is_none());
        assert!(key_bound_solution(&q, Role::B, &key).is_some());
    }

    #[test]
    fn terminality() {
        let q = examples::q2();
        let g: BTreeSet<Elem> = [Elem::named("a")].into_iter().collect();
        assert!(!is_terminal(&q, &named(&["a", "b", "a", "c"]), &g));
        assert!(is_terminal(&q, &named(&["b", "c", "a", "w"]), &g));
    }

    #[test]
    fn q2_down_arm_from_d_terminates() {
        // Hand-verified in the design notes: from d = R(a a | a b) with
        // g = {a}, the A/A-orientation chain terminates in two steps at a
        // frontier with key avoiding a.
        let q = examples::q2();
        let g: BTreeSet<Elem> = [Elem::named("a")].into_iter().collect();
        let d = named(&["a", "a", "a", "b"]);
        let search = arm_chains(&q, &d, &g, &HashSet::new(), ArmConfig::default());
        let chains = search.chains;
        assert!(!chains.is_empty(), "q2's d-arm must terminate");
        let shortest = chains.iter().map(|c| c.steps.len()).min().unwrap();
        assert_eq!(shortest, 2);
        for chain in &chains {
            let last = chain.last_frontier().expect("nonempty chain");
            assert!(is_terminal(&q, last, &g));
            // Every step really is a solution with its partner.
            for step in &chain.steps {
                assert!(cqa_query::is_solution_unordered(
                    &q,
                    &step.partner,
                    &step.frontier
                ));
            }
        }
    }

    #[test]
    fn q2_terminal_start_gives_empty_chain() {
        let q = examples::q2();
        let g: BTreeSet<Elem> = [Elem::named("a")].into_iter().collect();
        let f = named(&["b", "c", "a", "w"]);
        let chains = arm_chains(&q, &f, &g, &HashSet::new(), ArmConfig::default()).chains;
        assert!(chains.iter().any(|c| c.steps.is_empty()));
        // Longer chains past the immediate terminal are also offered.
        assert!(chains.iter().any(|c| !c.steps.is_empty()));
    }

    #[test]
    fn used_keys_block_extension() {
        let q = examples::q2();
        let g: BTreeSet<Elem> = [Elem::named("a"), Elem::named("zz")].into_iter().collect();
        let d = named(&["a", "zz", "a", "b"]);
        // Forbid every key: no chain can open a new block, and d itself is
        // non-terminal (key {a, zz} ⊇ g), so nothing terminates... except
        // chains are blocked only on *concrete* keys; fresh keys can't be
        // pre-listed. Instead check the self-block exclusion: a chain never
        // reuses the start key.
        let chains = arm_chains(&q, &d, &g, &HashSet::new(), ArmConfig::default()).chains;
        for chain in &chains {
            for step in &chain.steps {
                assert_ne!(step.frontier.key(q.signature()), d.key(q.signature()));
            }
        }
    }

    #[test]
    fn abstract_state_memoisation_is_sound() {
        // Two facts with identical patterns relative to g abstract equally.
        let g: BTreeSet<Elem> = [Elem::named("a")].into_iter().collect();
        let f1 = named(&["a", "p", "a", "q"]);
        let f2 = named(&["a", "r", "a", "s"]);
        assert_eq!(abstract_state(&f1, &g), abstract_state(&f2, &g));
        let f3 = named(&["a", "p", "a", "p"]); // repeated local element
        assert_ne!(abstract_state(&f1, &g), abstract_state(&f3, &g));
    }
}
