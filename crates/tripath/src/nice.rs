//! Niceness (Section 7's normal form, Proposition 7.2) and the witness
//! data the Section 9 reduction consumes.
//!
//! A tripath `Θ` with center `d e f`, root fact `u₀` and leaf facts
//! `u₁, u₂` is *nice* when:
//!
//! 1. **variable-nice** — some `x ∈ key(d)`, `y ∈ key(e)`, `z ∈ key(f)`
//!    avoid `key(u₀) ∪ key(u₁) ∪ key(u₂)` entirely;
//! 2. **solution-nice** — the only solutions in `Θ` are the parent/child
//!    ones the definition enforces, plus possibly `q(f d)` (the triangle);
//! 3. some element of `{x, y, z}` occurs in the key of *every* fact except
//!    `u₀, u₁, u₂`;
//! 4. each of `key(u₀), key(u₁), key(u₂)` contains an element occurring in
//!    no other fact's key.
//!
//! Instead of implementing the full normalisation proof of Proposition 7.2,
//! the search already produces many candidate tripaths (center refinements
//! × arm variants × arm extensions); [`find_nice_fork`] filters them
//! through this checker — on the paper's fork query `q2` this reproduces a
//! Figure-1c-style nice tripath.

use crate::search::{search_tripaths, SearchConfig, SearchOutcome};
use crate::structure::{Tripath, TripathKind};
use cqa_model::{Elem, Fact};
use cqa_query::{is_solution_unordered, Query};
use cqa_solvers::SolutionSet;
use std::collections::BTreeSet;

/// The witness elements of a nice tripath, named as in Section 9.
#[derive(Clone, Debug)]
pub struct NiceWitness {
    /// `x ∈ key(d)` avoiding the extremal keys.
    pub x: Elem,
    /// `y ∈ key(e)` avoiding the extremal keys.
    pub y: Elem,
    /// `z ∈ key(f)` avoiding the extremal keys.
    pub z: Elem,
    /// The private key element of the root fact `u₀`.
    pub u: Elem,
    /// The private key element of the `d`-side leaf fact `u₁`.
    pub v: Elem,
    /// The private key element of the `f`-side leaf fact `u₂`.
    pub w: Elem,
    /// The root fact.
    pub u0: Fact,
    /// The `d`-side leaf fact.
    pub u1: Fact,
    /// The `f`-side leaf fact.
    pub u2: Fact,
}

/// Check all four niceness conditions; returns the reduction witnesses on
/// success, or a human-readable reason on failure.
pub fn check_nice(q: &Query, tp: &Tripath) -> Result<NiceWitness, String> {
    let sig = q.signature();
    let (kind, center) = tp.validate(q).map_err(|e| e.to_string())?;
    let (u0, leaf_a, leaf_b) = tp.extremal_facts().map_err(|e| e.to_string())?;

    // Orient the leaves: u1 ends the arm below d, u2 the arm below f.
    let (u1, u2) = orient_leaves(q, tp, &center.d, leaf_a, leaf_b)?;

    // --- solution-nice -------------------------------------------------
    let db = tp.database(q);
    let sols = SolutionSet::enumerate(q, &db);
    let mut allowed: BTreeSet<(Fact, Fact)> = BTreeSet::new();
    for (i, b) in tp.blocks.iter().enumerate() {
        if let Some(p) = b.parent {
            let ap = tp.blocks[p].a.clone().expect("validated");
            let bb = b.b.clone().expect("validated");
            allowed.insert(ordered(ap, bb));
        }
        let _ = i;
    }
    allowed.insert(ordered(center.f.clone(), center.d.clone()));
    for &(ia, ib) in sols.pairs() {
        let pair = ordered(db.fact(ia).clone(), db.fact(ib).clone());
        if !allowed.contains(&pair) {
            return Err(format!(
                "extra solution {{{} {}}} breaks solution-niceness",
                pair.0, pair.1
            ));
        }
    }
    if kind == TripathKind::Fork
        && sols
            .pairs()
            .iter()
            .any(|&(ia, ib)| db.fact(ia) == &center.f && db.fact(ib) == &center.d)
    {
        return Err("fork center unexpectedly closes into a triangle".into());
    }

    // --- variable-nice + condition 3 ------------------------------------
    let extremal_keys: BTreeSet<Elem> = [&u0, &u1, &u2]
        .into_iter()
        .flat_map(|f| f.key_set(sig))
        .collect();
    let internal_facts: Vec<Fact> = tp
        .facts()
        .into_iter()
        .filter(|f| f != &u0 && f != &u1 && f != &u2)
        .collect();
    let mut chosen: Option<(Elem, Elem, Elem)> = None;
    'outer: for &x in center.d.key_set(sig).iter() {
        if extremal_keys.contains(&x) {
            continue;
        }
        for &y in center.e.key_set(sig).iter() {
            if extremal_keys.contains(&y) {
                continue;
            }
            for &z in center.f.key_set(sig).iter() {
                if extremal_keys.contains(&z) {
                    continue;
                }
                // Condition 3: one of x, y, z in every internal key.
                let covers = |e: Elem| internal_facts.iter().all(|f| f.key_set(sig).contains(&e));
                if covers(x) || covers(y) || covers(z) {
                    chosen = Some((x, y, z));
                    break 'outer;
                }
            }
        }
    }
    let Some((x, y, z)) = chosen else {
        return Err("no variable-nice witnesses satisfying condition 3".into());
    };

    // --- condition 4: private key elements ------------------------------
    let private = |target: &Fact| -> Option<Elem> {
        let others: BTreeSet<Elem> = tp
            .facts()
            .iter()
            .filter(|f| *f != target)
            .flat_map(|f| f.key_set(sig))
            .collect();
        // Prefer elements occurring nowhere else at all (stronger than the
        // paper's key-only requirement; the substitution of Section 9 is
        // cleaner for them).
        let anywhere: BTreeSet<Elem> = tp
            .facts()
            .iter()
            .filter(|f| *f != target)
            .flat_map(|f| f.adom())
            .collect();
        let key = target.key_set(sig);
        key.iter()
            .copied()
            .find(|e| !anywhere.contains(e))
            .or_else(|| key.iter().copied().find(|e| !others.contains(e)))
    };
    let u = private(&u0).ok_or("root fact has no private key element (condition 4)")?;
    let v = private(&u1).ok_or("d-leaf has no private key element (condition 4)")?;
    let w = private(&u2).ok_or("f-leaf has no private key element (condition 4)")?;

    Ok(NiceWitness {
        x,
        y,
        z,
        u,
        v,
        w,
        u0,
        u1,
        u2,
    })
}

fn ordered(a: Fact, b: Fact) -> (Fact, Fact) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Decide which leaf terminates the arm containing `d`.
fn orient_leaves(
    _q: &Query,
    tp: &Tripath,
    d: &Fact,
    leaf_a: Fact,
    leaf_b: Fact,
) -> Result<(Fact, Fact), String> {
    // Walk up from each leaf to the branching block's child; the child
    // whose b-fact is d owns that leaf.
    let branching = tp.branching_index().ok_or("no branching block")?;
    let child_of = |leaf: &Fact| -> Option<usize> {
        let mut idx = tp
            .blocks
            .iter()
            .position(|b| b.b.as_ref() == Some(leaf) && b.a.is_none())?;
        loop {
            let parent = tp.blocks[idx].parent?;
            if parent == branching {
                return Some(idx);
            }
            idx = parent;
        }
    };
    let ca = child_of(&leaf_a).ok_or("leaf A not below branching")?;
    let cb = child_of(&leaf_b).ok_or("leaf B not below branching")?;
    let d_in_a = tp.blocks[ca].b.as_ref() == Some(d) || subtree_contains(tp, ca, d);
    let d_in_b = tp.blocks[cb].b.as_ref() == Some(d) || subtree_contains(tp, cb, d);
    match (d_in_a, d_in_b) {
        (true, false) => Ok((leaf_a, leaf_b)),
        (false, true) => Ok((leaf_b, leaf_a)),
        _ => Err("cannot orient leaves relative to d".into()),
    }
}

fn subtree_contains(tp: &Tripath, root: usize, fact: &Fact) -> bool {
    // Blocks are few; scan descendants.
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        let b = &tp.blocks[i];
        if b.a.as_ref() == Some(fact) || b.b.as_ref() == Some(fact) {
            return true;
        }
        for (j, c) in tp.blocks.iter().enumerate() {
            if c.parent == Some(i) {
                stack.push(j);
            }
        }
    }
    false
}

/// Search for a *nice fork-tripath* of `q` (the gadget Section 9 needs).
/// Iterates fork centers and arm-chain combinations, filtering through
/// [`check_nice`].
pub fn find_nice_fork(q: &Query, cfg: &SearchConfig) -> Option<(Tripath, NiceWitness)> {
    use crate::center::center_candidates;
    use crate::chase::arm_chains;
    use crate::search::assemble_tripath;

    let sig = q.signature();
    let centers = center_candidates(q, cfg.full_partition_limit);
    for center in centers.iter().take(cfg.max_centers) {
        if center.triangle {
            continue;
        }
        let used: std::collections::HashSet<Vec<Elem>> = [&center.d, &center.e, &center.f]
            .into_iter()
            .map(|f| f.key(sig).to_vec())
            .collect();
        let up = arm_chains(q, &center.e, &center.g, &used, cfg.arm);
        let dd = arm_chains(q, &center.d, &center.g, &used, cfg.arm);
        let df = arm_chains(q, &center.f, &center.g, &used, cfg.arm);
        let mut assemblies = 0usize;
        for u in up.chains.iter().filter(|c| !c.steps.is_empty()) {
            for d_chain in &dd.chains {
                for f_chain in &df.chains {
                    assemblies += 1;
                    if assemblies > cfg.max_assemblies {
                        break;
                    }
                    let Some(tp) = assemble_tripath(q, center, u, d_chain, f_chain) else {
                        continue;
                    };
                    if let Ok(witness) = check_nice(q, &tp) {
                        // Nice *fork*: the validator ran inside check_nice;
                        // re-derive the kind cheaply via the center facts.
                        if !is_solution_unordered(q, &center.f, &center.d) {
                            return Some((tp, witness));
                        }
                    }
                }
            }
        }
    }
    None
}

/// Convenience: run the plain existence search (used by the classifier).
pub fn classify_tripaths(q: &Query, cfg: &SearchConfig) -> SearchOutcome {
    search_tripaths(q, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::examples;

    #[test]
    fn q2_has_a_nice_fork_tripath() {
        let q = examples::q2();
        let (tp, witness) = find_nice_fork(&q, &SearchConfig::default())
            .expect("q2 must admit a nice fork-tripath (Figure 1c)");
        let (kind, center) = tp.validate(&q).unwrap();
        assert_eq!(kind, TripathKind::Fork);
        // Witness sanity: x/y/z really come from the center keys and avoid
        // the extremal keys.
        let sig = q.signature();
        assert!(center.d.key_set(sig).contains(&witness.x));
        assert!(center.e.key_set(sig).contains(&witness.y));
        assert!(center.f.key_set(sig).contains(&witness.z));
        for uf in [&witness.u0, &witness.u1, &witness.u2] {
            let k = uf.key_set(sig);
            assert!(!k.contains(&witness.x));
            assert!(!k.contains(&witness.y));
            assert!(!k.contains(&witness.z));
        }
        // u, v, w are pairwise distinct and private.
        assert_ne!(witness.u, witness.v);
        assert_ne!(witness.v, witness.w);
        assert_ne!(witness.u, witness.w);
    }

    #[test]
    fn non_nice_tripath_is_rejected() {
        // The generic q2 search may return tripaths with extra solutions;
        // check_nice must reject exactly those. We verify the checker flags
        // at least the reasons it claims to check by feeding it a tripath
        // whose niceness we haven't arranged: any failure message is
        // acceptable, but success must imply solution-niceness.
        let q = examples::q2();
        let out = search_tripaths(&q, &SearchConfig::default());
        let tp = out.fork.expect("fork witness");
        match check_nice(&q, &tp) {
            Ok(_) => {
                // Then it must genuinely have no extra solutions.
                let db = tp.database(&q);
                let sols = cqa_solvers::SolutionSet::enumerate(&q, &db);
                // Enforced: one solution per non-root block + maybe (f, d).
                let enforced = tp.blocks.len() - 1;
                assert!(sols.pairs().len() <= enforced + 1);
            }
            Err(msg) => assert!(!msg.is_empty()),
        }
    }
}
