//! # cqa-tripath — the tripath combinatorics of Section 7
//!
//! Tripaths are the semantic objects that pin down the complexity of
//! 2way-determined queries:
//!
//! * no tripath → `certain(q)` solved by `Cert_k` (Theorem 8.1);
//! * fork-tripath → `certain(q)` coNP-complete (Theorem 9.1);
//! * triangle-tripath only → `certain(q)` solved by
//!   `Cert_k ∨ ¬matching` (Theorem 10.5).
//!
//! This crate provides the [`Tripath`] structure with an independent
//! validating checker, `g(e)` computation, *niceness* (Proposition 7.2's
//! normal form) with the Section 9 witness extraction, a bounded symbolic
//! existence [`search`], and in-database detection.
//!
//! In the workspace data flow (see `ARCHITECTURE.md` at the root) this
//! crate runs once per *query*, at classification time: `cqa::classify`
//! calls [`search_tripaths`] and routes `certain(q)` to the solver the
//! verdict prescribes. Nothing here touches databases except the
//! [`find_in_db`] validation utilities.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod center;
pub mod chase;
pub mod find_in_db;
pub mod nice;
pub mod search;
pub mod structure;

pub use center::{center_candidates, most_general_center, CenterCandidate};
pub use chase::{arm_chains, ArmChain, ArmConfig, ArmSearch, ArmStep, Role};
pub use find_in_db::{db_admits_tripath, find_tripath_in_db, DetectOutcome};
pub use nice::{check_nice, find_nice_fork, NiceWitness};
pub use search::{assemble_tripath, search_tripaths, SearchConfig, SearchOutcome};
pub use structure::{g_of_center, Center, TpBlock, Tripath, TripathError, TripathKind};
