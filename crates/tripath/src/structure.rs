//! The tripath data structure (Section 7) and its validating checker.
//!
//! A *tripath* of `q` is a database `Θ` whose blocks form a rooted tree:
//! a path from the *root block* down to the unique *branching block*, which
//! has exactly two children, each starting a path ending in a *leaf block*.
//! The root holds one fact `a(B₀)`, the leaves one fact `b(B)` each, every
//! other block exactly two key-equal facts `a(B) ≠ b(B)`; every parent/child
//! pair is connected by a solution `q{a(parent) b(child)}`; the branching
//! fact `e = a(branching)` forms `q(d e) ∧ q(e f)` with the children's
//! `b`-facts, and the *center* `d e f` determines `g(e)` whose elements must
//! not cover the keys of the root and leaf facts.
//!
//! The checker here is written straight from the definition and is fully
//! independent of the search code — every witness the search produces is
//! re-validated through it.

use cqa_model::{Database, Elem, Fact};
use cqa_query::{is_solution, is_solution_unordered, Query};
use std::collections::BTreeSet;

/// One block of a tripath, in tree position.
#[derive(Clone, Debug)]
pub struct TpBlock {
    /// The `a(B)` fact — present except in leaf blocks.
    pub a: Option<Fact>,
    /// The `b(B)` fact — present except in the root block.
    pub b: Option<Fact>,
    /// Parent block index; `None` exactly for the root.
    pub parent: Option<usize>,
}

/// Fork or triangle (Section 7): the center `d e f` is a *triangle* when
/// `q(f d)` also holds, a *fork* otherwise.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripathKind {
    /// Center without `q(f d)` — the coNP-hard witness shape (Section 9).
    Fork,
    /// Center with `q(f d)` — the `matching(q)` territory (Section 10).
    Triangle,
}

/// A candidate tripath: blocks plus tree structure. Use
/// [`Tripath::validate`] to check it really is one.
#[derive(Clone, Debug)]
pub struct Tripath {
    /// Blocks; index 0 must be the root.
    pub blocks: Vec<TpBlock>,
}

/// Why a candidate failed validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TripathError(pub String);

impl std::fmt::Display for TripathError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid tripath: {}", self.0)
    }
}

impl std::error::Error for TripathError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TripathError> {
    Err(TripathError(msg.into()))
}

/// The validated center of a tripath.
#[derive(Clone, Debug)]
pub struct Center {
    /// `d` — the child `b`-fact with `q(d e)`.
    pub d: Fact,
    /// `e` — the branching fact `a(branching)`.
    pub e: Fact,
    /// `f` — the child `b`-fact with `q(e f)`.
    pub f: Fact,
    /// The element set `g(e)`.
    pub g: BTreeSet<Elem>,
}

/// Compute `g(e)` for a branching triple `d e f` (Section 7's five-case
/// definition of `ḡ(e)`, collapsed to the element set).
pub fn g_of_center(q: &Query, d: &Fact, e: &Fact, f: &Fact) -> BTreeSet<Elem> {
    let sig = q.signature();
    let kd = d.key_set(sig);
    let ke = e.key_set(sig);
    let kf = f.key_set(sig);
    let d_in_e = kd.is_subset(&ke);
    let f_in_e = kf.is_subset(&ke);
    if d_in_e && !f_in_e {
        kd
    } else if !d_in_e && f_in_e {
        kf
    } else if kd.is_subset(&kf) && f_in_e {
        // key(d) ⊆ key(f) ⊆ key(e)
        kd
    } else if kf.is_subset(&kd) && d_in_e {
        // key(f) ⊆ key(d) ⊆ key(e)
        kf
    } else {
        ke
    }
}

impl Tripath {
    /// All facts of the tripath.
    pub fn facts(&self) -> Vec<Fact> {
        let mut out = Vec::new();
        for b in &self.blocks {
            out.extend(b.a.iter().cloned());
            out.extend(b.b.iter().cloned());
        }
        out
    }

    /// The tripath as a standalone database.
    pub fn database(&self, q: &Query) -> Database {
        let mut db = Database::new(*q.signature());
        for fact in self.facts() {
            db.insert(fact)
                .expect("tripath facts share the query signature");
        }
        db
    }

    /// Children of each block.
    fn children(&self) -> Vec<Vec<usize>> {
        let mut ch = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(p) = b.parent {
                ch[p].push(i);
            }
        }
        ch
    }

    /// Index of the branching block (the unique block with two children).
    pub fn branching_index(&self) -> Option<usize> {
        self.children().iter().position(|c| c.len() == 2)
    }

    /// The root fact `u₀` and leaf facts `u₁`, `u₂`.
    pub fn extremal_facts(&self) -> Result<(Fact, Fact, Fact), TripathError> {
        let children = self.children();
        let root = match self.blocks.first() {
            Some(b) if b.parent.is_none() => b,
            _ => return err("block 0 must be the root"),
        };
        let u0 = root
            .a
            .clone()
            .ok_or(TripathError("root lacks a(B)".into()))?;
        let leaves: Vec<&TpBlock> = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| children[*i].is_empty())
            .map(|(_, b)| b)
            .collect();
        if leaves.len() != 2 {
            return err(format!("expected 2 leaves, found {}", leaves.len()));
        }
        let u1 = leaves[0]
            .b
            .clone()
            .ok_or(TripathError("leaf lacks b(B)".into()))?;
        let u2 = leaves[1]
            .b
            .clone()
            .ok_or(TripathError("leaf lacks b(B)".into()))?;
        Ok((u0, u1, u2))
    }

    /// Validate against the full Section 7 definition; returns the kind and
    /// center on success.
    pub fn validate(&self, q: &Query) -> Result<(TripathKind, Center), TripathError> {
        let sig = q.signature();
        let n = self.blocks.len();
        if n < 4 {
            return err("a tripath needs at least root, branching and two leaves");
        }

        // --- tree shape -------------------------------------------------
        if self.blocks[0].parent.is_some() {
            return err("block 0 must be the root (no parent)");
        }
        for (i, b) in self.blocks.iter().enumerate().skip(1) {
            match b.parent {
                None => return err(format!("block {i} is a second root")),
                Some(p) if p >= n => return err(format!("block {i} has dangling parent")),
                Some(_) => {}
            }
        }
        // Reachability (also rules out cycles since each non-root has one parent).
        for (i, _) in self.blocks.iter().enumerate() {
            let mut cur = i;
            let mut steps = 0;
            while let Some(p) = self.blocks[cur].parent {
                cur = p;
                steps += 1;
                if steps > n {
                    return err("parent pointers contain a cycle");
                }
            }
            if cur != 0 {
                return err(format!("block {i} not connected to the root"));
            }
        }
        let children = self.children();
        let branching = match children.iter().filter(|c| c.len() >= 2).count() {
            1 => children
                .iter()
                .position(|c| c.len() == 2)
                .ok_or(TripathError("a block has more than two children".into()))?,
            k => return err(format!("expected exactly 1 branching block, found {k}")),
        };
        let leaf_count = children.iter().filter(|c| c.is_empty()).count();
        if leaf_count != 2 {
            return err(format!(
                "expected exactly 2 leaf blocks, found {leaf_count}"
            ));
        }
        if branching == 0 || children[branching].is_empty() {
            return err("branching block must be internal");
        }

        // --- fact placement ----------------------------------------------
        for (i, b) in self.blocks.iter().enumerate() {
            let is_root = i == 0;
            let is_leaf = children[i].is_empty();
            match (is_root, is_leaf) {
                (true, _) => {
                    if b.a.is_none() || b.b.is_some() {
                        return err("root must hold exactly a(B)");
                    }
                }
                (_, true) => {
                    if b.b.is_none() || b.a.is_some() {
                        return err(format!("leaf {i} must hold exactly b(B)"));
                    }
                }
                _ => {
                    let (a, bb) = match (&b.a, &b.b) {
                        (Some(a), Some(bb)) => (a, bb),
                        _ => return err(format!("internal block {i} must hold a(B) and b(B)")),
                    };
                    if a == bb {
                        return err(format!("block {i}: a(B) and b(B) must differ"));
                    }
                    if !a.key_equal(bb, sig) {
                        return err(format!("block {i}: a(B) and b(B) must be key-equal"));
                    }
                }
            }
        }

        // --- blocks are pairwise distinct ---------------------------------
        let key_of = |b: &TpBlock| -> Vec<Elem> {
            let f = b.a.as_ref().or(b.b.as_ref()).expect("checked above");
            f.key(sig).to_vec()
        };
        for i in 0..n {
            for j in (i + 1)..n {
                if self.blocks[i]
                    .a
                    .as_ref()
                    .or(self.blocks[i].b.as_ref())
                    .map(|f| f.rel())
                    == self.blocks[j]
                        .a
                        .as_ref()
                        .or(self.blocks[j].b.as_ref())
                        .map(|f| f.rel())
                    && key_of(&self.blocks[i]) == key_of(&self.blocks[j])
                {
                    return err(format!("blocks {i} and {j} collapse (same key)"));
                }
            }
        }

        // --- parent/child solutions ---------------------------------------
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(p) = b.parent {
                let ap = self.blocks[p]
                    .a
                    .as_ref()
                    .ok_or_else(|| TripathError(format!("parent {p} lacks a(B)")))?;
                let bb =
                    b.b.as_ref()
                        .ok_or_else(|| TripathError(format!("block {i} lacks b(B)")))?;
                if !is_solution_unordered(q, ap, bb) {
                    return err(format!("no solution q{{a({p}) b({i})}}"));
                }
            }
        }

        // --- center -------------------------------------------------------
        let e = self.blocks[branching]
            .a
            .clone()
            .expect("internal block has a(B)");
        let c1 = self.blocks[children[branching][0]]
            .b
            .clone()
            .expect("child has b(B)");
        let c2 = self.blocks[children[branching][1]]
            .b
            .clone()
            .expect("child has b(B)");
        let (d, f) = if is_solution(q, &c1, &e) && is_solution(q, &e, &c2) {
            (c1, c2)
        } else if is_solution(q, &c2, &e) && is_solution(q, &e, &c1) {
            (c2, c1)
        } else {
            return err("branching fact is not branching: need q(d e) ∧ q(e f)");
        };

        // --- g(e) conditions ----------------------------------------------
        let g = g_of_center(q, &d, &e, &f);
        let (u0, u1, u2) = self.extremal_facts()?;
        for (name, u) in [("u0", &u0), ("u1", &u1), ("u2", &u2)] {
            if g.is_subset(&u.key_set(sig)) {
                return err(format!("g(e) ⊆ key({name})"));
            }
        }

        let kind = if is_solution(q, &f, &d) {
            TripathKind::Triangle
        } else {
            TripathKind::Fork
        };
        Ok((kind, Center { d, e, f, g }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_model::Fact;
    use cqa_query::examples;

    fn f4(names: [&str; 4]) -> Fact {
        Fact::from_names(names)
    }

    #[test]
    fn g_of_center_cases() {
        let q = examples::q2();
        // Case "else": keys pairwise incomparable → g = key(e).
        let d = f4(["a", "b", "x", "x"]);
        let e = f4(["c", "d", "x", "x"]);
        let f = f4(["e", "f", "x", "x"]);
        assert_eq!(g_of_center(&q, &d, &e, &f), e.key_set(q.signature()));
        // Case 1: key(d) ⊆ key(e), key(f) ⊄ key(e) → g = key(d).
        let d = f4(["a", "a", "x", "x"]);
        let e = f4(["a", "b", "x", "x"]);
        let f = f4(["c", "d", "x", "x"]);
        assert_eq!(g_of_center(&q, &d, &e, &f), d.key_set(q.signature()));
        // Case 2 (symmetric).
        let d = f4(["c", "d", "x", "x"]);
        let f = f4(["a", "a", "x", "x"]);
        assert_eq!(g_of_center(&q, &d, &e, &f), f.key_set(q.signature()));
        // Case 3: key(d) ⊆ key(f) ⊆ key(e) → g = key(d).
        let d = f4(["a", "a", "x", "x"]);
        let f = f4(["a", "b", "x", "x"]);
        let e = f4(["a", "b", "x", "x"]); // key {a,b}
        assert_eq!(g_of_center(&q, &d, &e, &f), d.key_set(q.signature()));
    }

    #[test]
    fn rejects_tiny_structures() {
        let t = Tripath { blocks: vec![] };
        assert!(t.validate(&examples::q2()).is_err());
    }

    #[test]
    fn rejects_two_roots() {
        let mk = |parent| TpBlock {
            a: Some(f4(["a", "b", "a", "a"])),
            b: Some(f4(["a", "b", "c", "c"])),
            parent,
        };
        let t = Tripath {
            blocks: vec![mk(None), mk(None), mk(Some(0)), mk(Some(0))],
        };
        assert!(t.validate(&examples::q2()).is_err());
    }
}
