//! Center enumeration: candidate branching triples `d e f`.
//!
//! A center requires `q(d e) ∧ q(e f)` with `e` the shared fact:
//! `μ₁(B) = μ₂(A) = e` for instantiations `μ₁, μ₂` of `q`'s variables. The
//! *most-general* center instantiates the unification of `B` with a renamed
//! copy of `A` using fresh elements. Every other center is an element-merge
//! (homomorphic image) of it, so candidates are enumerated as partitions of
//! the most-general center's elements — exhaustively when few, limited to
//! single merges otherwise (the niceness constructions of Figure 1c use
//! such refinements).

use crate::structure::g_of_center;
use cqa_model::{Elem, Fact};
use cqa_query::{is_solution, Query, Var};
use std::collections::{BTreeSet, HashMap};

/// A candidate center.
#[derive(Clone, Debug)]
pub struct CenterCandidate {
    /// `d` with `q(d e)`.
    pub d: Fact,
    /// The branching fact `e`.
    pub e: Fact,
    /// `f` with `q(e f)`.
    pub f: Fact,
    /// Whether `q(f d)` holds — triangle center.
    pub triangle: bool,
    /// The element set `g(e)`.
    pub g: BTreeSet<Elem>,
}

/// The most-general center `d e f` of `q`, if the shapes unify into three
/// pairwise non-key-equal facts.
pub fn most_general_center(q: &Query) -> Option<(Fact, Fact, Fact)> {
    // The shared fact `e` must instantiate `B` (as μ₁(B)) and `A` (as
    // μ₂(A)) at once, so self-join-free queries — whose atoms name
    // distinct relations — have no center at all.
    if q.a().rel() != q.b().rel() {
        return None;
    }
    // Variables of the two instantiations live in disjoint copies 0 and 1.
    let mut classes: HashMap<(u8, Var), usize> = HashMap::new();
    let mut parent: Vec<usize> = Vec::new();
    let class_of =
        |classes: &mut HashMap<(u8, Var), usize>, parent: &mut Vec<usize>, k: (u8, Var)| -> usize {
            *classes.entry(k).or_insert_with(|| {
                parent.push(parent.len());
                parent.len() - 1
            })
        };
    fn find(parent: &mut [usize], mut i: usize) -> usize {
        while parent[i] != i {
            parent[i] = parent[parent[i]];
            i = parent[i];
        }
        i
    }
    // Register every variable of both copies.
    for v in q.a().tuple().iter().chain(q.b().tuple()) {
        class_of(&mut classes, &mut parent, (0, v.clone()));
    }
    for v in q.a().tuple().iter().chain(q.b().tuple()) {
        class_of(&mut classes, &mut parent, (1, v.clone()));
    }
    // Unify μ₁(B)[i] with μ₂(A)[i].
    for i in 0..q.signature().arity() {
        let cb = classes[&(0, q.b().at(i).clone())];
        let ca = classes[&(1, q.a().at(i).clone())];
        let (rb, ra) = (find(&mut parent, cb), find(&mut parent, ca));
        if rb != ra {
            parent[rb.max(ra)] = rb.min(ra);
        }
    }
    // Instantiate each class with a fresh element.
    let mut elem_of_class: HashMap<usize, Elem> = HashMap::new();
    let fact_of = |atom: &cqa_query::Atom,
                   copy: u8,
                   classes: &HashMap<(u8, Var), usize>,
                   parent: &mut Vec<usize>,
                   elem_of_class: &mut HashMap<usize, Elem>|
     -> Fact {
        let tuple: Vec<Elem> = atom
            .tuple()
            .iter()
            .map(|v| {
                let c = find(parent, classes[&(copy, v.clone())]);
                *elem_of_class.entry(c).or_insert_with(Elem::fresh)
            })
            .collect();
        Fact::new(atom.rel(), tuple)
    };
    let d = fact_of(q.a(), 0, &classes, &mut parent, &mut elem_of_class);
    let e = fact_of(q.b(), 0, &classes, &mut parent, &mut elem_of_class);
    let e2 = fact_of(q.a(), 1, &classes, &mut parent, &mut elem_of_class);
    let f = fact_of(q.b(), 1, &classes, &mut parent, &mut elem_of_class);
    debug_assert_eq!(e, e2, "unification must make μ₁(B) = μ₂(A)");
    debug_assert!(is_solution(q, &d, &e));
    debug_assert!(is_solution(q, &e, &f));
    center_shape_ok(q, &d, &e, &f).then_some((d, e, f))
}

/// `d`, `e`, `f` must sit in three distinct blocks.
fn center_shape_ok(q: &Query, d: &Fact, e: &Fact, f: &Fact) -> bool {
    let sig = q.signature();
    !d.key_equal(e, sig) && !e.key_equal(f, sig) && !d.key_equal(f, sig)
}

/// Apply an element substitution to a fact.
fn map_fact(fact: &Fact, m: &HashMap<Elem, Elem>) -> Fact {
    Fact::new(
        fact.rel(),
        fact.tuple()
            .iter()
            .map(|e| *m.get(e).unwrap_or(e))
            .collect::<Vec<_>>(),
    )
}

/// All partitions of `items` as merge maps (element → class
/// representative). Ordered by number of merges, so the identity partition
/// comes first and light refinements are tried before heavy ones.
fn partitions(items: &[Elem]) -> Vec<HashMap<Elem, Elem>> {
    fn rec(
        items: &[Elem],
        idx: usize,
        classes: &mut Vec<Vec<Elem>>,
        out: &mut Vec<HashMap<Elem, Elem>>,
    ) {
        if idx == items.len() {
            let mut m = HashMap::new();
            for cls in classes.iter() {
                for &e in &cls[1..] {
                    m.insert(e, cls[0]);
                }
            }
            out.push(m);
            return;
        }
        for ci in 0..classes.len() {
            classes[ci].push(items[idx]);
            rec(items, idx + 1, classes, out);
            classes[ci].pop();
        }
        classes.push(vec![items[idx]]);
        rec(items, idx + 1, classes, out);
        classes.pop();
    }
    let mut out = Vec::new();
    rec(items, 0, &mut Vec::new(), &mut out);
    out.sort_by_key(HashMap::len);
    out
}

/// Merge maps limited to identity plus all single-pair merges — the
/// fallback when the center has too many elements for full partition
/// enumeration.
fn pairwise_merges(items: &[Elem]) -> Vec<HashMap<Elem, Elem>> {
    let mut out = vec![HashMap::new()];
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            out.push([(items[j], items[i])].into_iter().collect());
        }
    }
    out
}

/// Enumerate candidate centers: the most-general center and its element
/// merges. Full partition lattice when the center has at most
/// `full_partition_limit` distinct elements, otherwise identity + pairwise
/// merges.
pub fn center_candidates(q: &Query, full_partition_limit: usize) -> Vec<CenterCandidate> {
    let Some((d, e, f)) = most_general_center(q) else {
        return Vec::new();
    };
    let mut elems: Vec<Elem> = Vec::new();
    for fact in [&d, &e, &f] {
        for &x in fact.tuple() {
            if !elems.contains(&x) {
                elems.push(x);
            }
        }
    }
    let merges = if elems.len() <= full_partition_limit {
        partitions(&elems)
    } else {
        pairwise_merges(&elems)
    };
    let mut out = Vec::new();
    for m in merges {
        let (dd, ee, ff) = (map_fact(&d, &m), map_fact(&e, &m), map_fact(&f, &m));
        if !center_shape_ok(q, &dd, &ee, &ff) {
            continue;
        }
        debug_assert!(is_solution(q, &dd, &ee) && is_solution(q, &ee, &ff));
        let triangle = is_solution(q, &ff, &dd);
        let g = g_of_center(q, &dd, &ee, &ff);
        out.push(CenterCandidate {
            d: dd,
            e: ee,
            f: ff,
            triangle,
            g,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::examples;

    #[test]
    fn self_join_free_queries_have_no_center() {
        // The shared fact would need to be an R1- and an R2-fact at once.
        // Regression: this 2way-determined-shaped query used to trip the
        // unification debug assertion instead of returning `None`.
        let q = cqa_query::parse_query("R1(x | x u) R2(u | x x)").unwrap();
        assert!(most_general_center(&q).is_none());
        let q = cqa_query::parse_query("R1(x | y) R2(y | z)").unwrap();
        assert!(most_general_center(&q).is_none());
    }

    #[test]
    fn q2_most_general_center_is_a_fork() {
        // Worked out by hand: d = R(a a | a b), e = R(a b | a c),
        // f = R(b c | a w) up to renaming; g(e) = key(d) = {a}.
        let q = examples::q2();
        let (d, e, f) = most_general_center(&q).expect("q2 has a center");
        assert!(is_solution(&q, &d, &e));
        assert!(is_solution(&q, &e, &f));
        assert!(!is_solution(&q, &f, &d), "q2's generic center is a fork");
        // d's key collapses to one element (x = u forced by unification).
        assert_eq!(d.key_set(q.signature()).len(), 1);
        let g = g_of_center(&q, &d, &e, &f);
        assert_eq!(g, d.key_set(q.signature()));
    }

    #[test]
    fn q6_most_general_center_is_a_triangle() {
        // q6 = R(x | y z) R(z | x y): all branching triples close into
        // triangles (Section 10).
        let q = examples::q6();
        let (d, _e, f) = most_general_center(&q).expect("q6 has a center");
        assert!(is_solution(&q, &f, &d), "q6 center must be a triangle");
    }

    #[test]
    fn q5_has_no_center() {
        // q5 = R(x | y x) R(y | x u): any d e f with q(d e) ∧ q(e f) forces
        // two of them key-equal (paper, Section 8), so no center exists.
        let q = examples::q5();
        assert!(most_general_center(&q).is_none());
        assert!(center_candidates(&q, 8).is_empty());
    }

    #[test]
    fn candidates_include_identity_and_merges() {
        let q = examples::q2();
        let cands = center_candidates(&q, 8);
        assert!(!cands.is_empty());
        // All candidates are genuine centers.
        for c in &cands {
            assert!(is_solution(&q, &c.d, &c.e));
            assert!(is_solution(&q, &c.e, &c.f));
        }
        // Merged candidates exist (Figure 1c's center is a merge of the
        // generic one).
        assert!(cands.len() > 1);
    }

    #[test]
    fn partitions_of_three() {
        let items: Vec<Elem> = (0..3).map(|_| Elem::fresh()).collect();
        let ps = partitions(&items);
        // Bell(3) = 5.
        assert_eq!(ps.len(), 5);
        assert!(ps[0].is_empty(), "identity first");
    }

    #[test]
    fn pairwise_fallback_size() {
        let items: Vec<Elem> = (0..5).map(|_| Elem::fresh()).collect();
        assert_eq!(pairwise_merges(&items).len(), 1 + 10);
    }
}
