//! Detect a tripath *inside* a concrete database (`D` contains a tripath
//! iff some `Θ ⊆ D` is one — Section 7).
//!
//! Used by the Proposition 8.2 experiments ("if `D` does not admit a
//! tripath then `certain(q) = Cert_k(q)`") and by property tests tying the
//! symbolic search to concrete instances.

use crate::structure::{g_of_center, TpBlock, Tripath, TripathKind};
use cqa_model::{BlockId, Database, Elem, FactId};
use cqa_query::Query;
use cqa_solvers::SolutionSet;
use std::collections::{BTreeSet, HashSet};

/// Result of scanning a database for tripaths.
#[derive(Clone, Debug, Default)]
pub struct DetectOutcome {
    /// A contained fork-tripath, if found.
    pub fork: Option<Tripath>,
    /// A contained triangle-tripath, if found.
    pub triangle: Option<Tripath>,
    /// `true` when the node budget was hit before the scan finished.
    pub exhausted: bool,
}

impl DetectOutcome {
    /// Did the database contain any tripath?
    pub fn contains_tripath(&self) -> bool {
        self.fork.is_some() || self.triangle.is_some()
    }
}

/// One in-database arm chain: `(partner, frontier)` fact ids.
type DbChain = Vec<(FactId, FactId)>;

struct Detector<'a> {
    q: &'a Query,
    db: &'a Database,
    sols: &'a SolutionSet,
    budget: u64,
    exhausted: bool,
}

impl<'a> Detector<'a> {
    fn spend(&mut self) -> bool {
        if self.budget == 0 {
            self.exhausted = true;
            return false;
        }
        self.budget -= 1;
        true
    }

    /// Terminating chains from `start`, avoiding `used` blocks. Chains of
    /// length ≥ `min_len` only (the up arm needs ≥ 1 step).
    fn chains(
        &mut self,
        start: FactId,
        g: &BTreeSet<Elem>,
        used: &HashSet<BlockId>,
        min_len: usize,
        max_depth: usize,
        limit: usize,
    ) -> Vec<DbChain> {
        let mut out = Vec::new();
        let mut chain: DbChain = Vec::new();
        let mut used = used.clone();
        self.chains_rec(
            start, g, &mut used, min_len, max_depth, limit, &mut chain, &mut out,
        );
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn chains_rec(
        &mut self,
        current: FactId,
        g: &BTreeSet<Elem>,
        used: &mut HashSet<BlockId>,
        min_len: usize,
        max_depth: usize,
        limit: usize,
        chain: &mut DbChain,
        out: &mut Vec<DbChain>,
    ) {
        if out.len() >= limit || !self.spend() {
            return;
        }
        let sig = self.q.signature();
        if chain.len() >= min_len && !g.is_subset(&self.db.fact(current).key_set(sig)) {
            out.push(chain.clone());
        }
        if chain.len() >= max_depth {
            return;
        }
        let block = self.db.block_of(current);
        for &partner in self.db.block(block) {
            if partner == current {
                continue;
            }
            for next in self.sols.partners(partner) {
                let nb = self.db.block_of(next);
                if used.contains(&nb) || nb == block {
                    continue;
                }
                used.insert(nb);
                chain.push((partner, next));
                self.chains_rec(next, g, used, min_len, max_depth, limit, chain, out);
                chain.pop();
                used.remove(&nb);
                if out.len() >= limit {
                    return;
                }
            }
        }
    }
}

/// Scan `db` for contained tripaths of `q`. `budget` bounds search nodes.
pub fn find_tripath_in_db(q: &Query, db: &Database, budget: u64) -> DetectOutcome {
    let sols = SolutionSet::enumerate(q, db);
    let mut det = Detector {
        q,
        db,
        sols: &sols,
        budget,
        exhausted: false,
    };
    let mut outcome = DetectOutcome::default();
    let sig = q.signature();

    'centers: for (e_id, _) in db.facts() {
        let ds: Vec<FactId> = sols.firsts_of(e_id).to_vec();
        let fs: Vec<FactId> = sols.seconds_of(e_id).to_vec();
        for &d_id in &ds {
            for &f_id in &fs {
                if outcome.fork.is_some() && outcome.triangle.is_some() {
                    break 'centers;
                }
                let (d, e, f) = (db.fact(d_id), db.fact(e_id), db.fact(f_id));
                if db.key_equal(d_id, e_id) || db.key_equal(e_id, f_id) || db.key_equal(d_id, f_id)
                {
                    continue;
                }
                let triangle = sols.holds(f_id, d_id);
                if (triangle && outcome.triangle.is_some()) || (!triangle && outcome.fork.is_some())
                {
                    continue;
                }
                let g = g_of_center(q, d, e, f);
                let used: HashSet<BlockId> = [d_id, e_id, f_id]
                    .into_iter()
                    .map(|i| db.block_of(i))
                    .collect();
                if let Some(tp) = det.try_center(e_id, d_id, f_id, &g, &used) {
                    if let Ok((kind, _)) = tp.validate(q) {
                        match kind {
                            TripathKind::Fork => outcome.fork = Some(tp),
                            TripathKind::Triangle => outcome.triangle = Some(tp),
                        }
                    }
                }
                if det.exhausted {
                    outcome.exhausted = true;
                    break 'centers;
                }
            }
        }
    }
    let _ = sig;
    outcome
}

impl<'a> Detector<'a> {
    fn try_center(
        &mut self,
        e_id: FactId,
        d_id: FactId,
        f_id: FactId,
        g: &BTreeSet<Elem>,
        used: &HashSet<BlockId>,
    ) -> Option<Tripath> {
        const CHAIN_LIMIT: usize = 6;
        const MAX_DEPTH: usize = 8;
        let d_chains = self.chains(d_id, g, used, 0, MAX_DEPTH, CHAIN_LIMIT);
        if d_chains.is_empty() {
            return None;
        }
        for d_chain in &d_chains {
            let mut used_d = used.clone();
            for &(_, fr) in d_chain {
                used_d.insert(self.db.block_of(fr));
            }
            let f_chains = self.chains(f_id, g, &used_d, 0, MAX_DEPTH, CHAIN_LIMIT);
            for f_chain in &f_chains {
                let mut used_f = used_d.clone();
                for &(_, fr) in f_chain {
                    used_f.insert(self.db.block_of(fr));
                }
                let up_chains = self.chains(e_id, g, &used_f, 1, MAX_DEPTH, CHAIN_LIMIT);
                for up in &up_chains {
                    if let Some(tp) = self.assemble(e_id, d_id, f_id, up, d_chain, f_chain) {
                        return Some(tp);
                    }
                }
            }
        }
        None
    }

    fn assemble(
        &self,
        e_id: FactId,
        d_id: FactId,
        f_id: FactId,
        up: &DbChain,
        d_chain: &DbChain,
        f_chain: &DbChain,
    ) -> Option<Tripath> {
        let fact = |id: FactId| self.db.fact(id).clone();
        let mut blocks: Vec<TpBlock> = Vec::new();
        let n_up = up.len();
        blocks.push(TpBlock {
            a: Some(fact(up[n_up - 1].1)),
            b: None,
            parent: None,
        });
        for i in (1..n_up).rev() {
            let parent = blocks.len() - 1;
            blocks.push(TpBlock {
                a: Some(fact(up[i - 1].1)),
                b: Some(fact(up[i].0)),
                parent: Some(parent),
            });
        }
        let branching_idx = blocks.len();
        blocks.push(TpBlock {
            a: Some(fact(e_id)),
            b: Some(fact(up[0].0)),
            parent: Some(branching_idx - 1),
        });
        for (start, chain) in [(d_id, d_chain), (f_id, f_chain)] {
            let mut parent = branching_idx;
            if chain.is_empty() {
                blocks.push(TpBlock {
                    a: None,
                    b: Some(fact(start)),
                    parent: Some(parent),
                });
                continue;
            }
            blocks.push(TpBlock {
                a: Some(fact(chain[0].0)),
                b: Some(fact(start)),
                parent: Some(parent),
            });
            parent = blocks.len() - 1;
            for i in 1..chain.len() {
                blocks.push(TpBlock {
                    a: Some(fact(chain[i].0)),
                    b: Some(fact(chain[i - 1].1)),
                    parent: Some(parent),
                });
                parent = blocks.len() - 1;
            }
            blocks.push(TpBlock {
                a: None,
                b: Some(fact(chain.last()?.1)),
                parent: Some(parent),
            });
        }
        Some(Tripath { blocks })
    }
}

/// Does `db` contain any tripath of `q` (up to the budget)?
pub fn db_admits_tripath(q: &Query, db: &Database, budget: u64) -> bool {
    find_tripath_in_db(q, db, budget).contains_tripath()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_tripaths, SearchConfig};
    use cqa_model::{Fact, Signature};
    use cqa_query::examples;

    #[test]
    fn symbolic_witness_is_detected_concretely() {
        // The symbolic search's q2 fork, dumped into a database, must be
        // re-found by the in-database detector.
        let q = examples::q2();
        let out = search_tripaths(&q, &SearchConfig::default());
        let tp = out.fork.expect("q2 fork witness");
        let db = tp.database(&q);
        let det = find_tripath_in_db(&q, &db, 1_000_000);
        assert!(
            det.fork.is_some(),
            "detector must find the embedded fork-tripath"
        );
    }

    #[test]
    fn plain_chain_contains_no_tripath() {
        // A q2 database with a single solution chain has no branching fact
        // at all.
        let mut db = Database::new(Signature::new(4, 2).unwrap());
        db.insert(Fact::from_names(["a", "b", "a", "c"])).unwrap();
        db.insert(Fact::from_names(["b", "c", "a", "d"])).unwrap();
        let det = find_tripath_in_db(&examples::q2(), &db, 1_000_000);
        assert!(!det.contains_tripath());
        assert!(!det.exhausted);
    }

    #[test]
    fn q6_triangle_database() {
        // Embed the symbolic q6 triangle witness and re-detect it.
        let q = examples::q6();
        let out = search_tripaths(&q, &SearchConfig::default());
        let tp = out.triangle.expect("q6 triangle witness");
        let db = tp.database(&q);
        let det = find_tripath_in_db(&q, &db, 1_000_000);
        assert!(det.triangle.is_some());
        assert!(det.fork.is_none());
    }

    #[test]
    fn budget_exhaustion_is_flagged() {
        let q = examples::q2();
        let out = search_tripaths(&q, &SearchConfig::default());
        let db = out.fork.expect("fork").database(&q);
        let det = find_tripath_in_db(&q, &db, 3);
        assert!(det.exhausted || det.contains_tripath());
    }
}
