//! Tripath existence search (classification side of Sections 8–10).
//!
//! For a 2way-determined query the search enumerates candidate centers
//! (most-general unification plus element merges), chases the three arms
//! most-generally until they may legally terminate (`g(e) ⊈ key`), and
//! assembles + re-validates full tripaths. Every returned witness is a
//! genuine tripath (checked by the independent validator); absence results
//! carry a completeness flag because the arm chase is bounded.

use crate::center::{center_candidates, CenterCandidate};
use crate::chase::{arm_chains, ArmChain, ArmConfig};
use crate::structure::{TpBlock, Tripath, TripathKind};
use cqa_model::Elem;
use cqa_query::conditions::is_2way_determined;
use cqa_query::Query;
use std::collections::HashSet;

/// Limits for [`search_tripaths`].
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// Enumerate the full partition lattice of center elements when the
    /// center has at most this many distinct elements; otherwise fall back
    /// to identity + pairwise merges.
    pub full_partition_limit: usize,
    /// Per-arm chase limits.
    pub arm: ArmConfig,
    /// Maximum number of centers examined.
    pub max_centers: usize,
    /// Maximum number of arm-chain combinations assembled per center.
    pub max_assemblies: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            full_partition_limit: 7,
            arm: ArmConfig::default(),
            max_centers: 4_000,
            max_assemblies: 512,
        }
    }
}

/// Outcome of the existence search.
#[derive(Clone, Debug, Default)]
pub struct SearchOutcome {
    /// A fork-tripath witness, if found.
    pub fork: Option<Tripath>,
    /// A triangle-tripath witness, if found.
    pub triangle: Option<Tripath>,
    /// `true` when some budget was hit, so "not found" is bounded evidence
    /// rather than proof.
    pub exhausted: bool,
}

impl SearchOutcome {
    /// Did the search find any tripath?
    pub fn admits_tripath(&self) -> bool {
        self.fork.is_some() || self.triangle.is_some()
    }
}

/// Assemble a tripath from a center and three terminating arm chains.
/// `up` walks from the branching block to the root and must be non-empty;
/// `down_d` / `down_f` walk from the children blocks (holding `d` / `f`) to
/// the leaves. Returns `None` when block keys collide.
pub fn assemble_tripath(
    q: &Query,
    center: &CenterCandidate,
    up: &ArmChain,
    down_d: &ArmChain,
    down_f: &ArmChain,
) -> Option<Tripath> {
    let sig = q.signature();
    if up.steps.is_empty() {
        return None; // the branching block always has a parent
    }
    let mut blocks: Vec<TpBlock> = Vec::new();

    // Root: the last frontier of the up chain.
    let n_up = up.steps.len();
    blocks.push(TpBlock {
        a: Some(up.steps[n_up - 1].frontier.clone()),
        b: None,
        parent: None,
    });
    // Spine below the root: step i (from the inside out) produced
    // (partner b_i ~ previous frontier). Walking root → branching:
    // intermediate block j holds a = steps[j].frontier's … simpler to walk
    // from branching outwards and fix parents afterwards.
    //
    // Up-chain semantics: starting at e (a-fact of branching), step 0 adds
    // partner b₀ = b(branching) and frontier a₁ = a(next block up);
    // step i adds partner b_i = b(block of a_i) and frontier a_{i+1}.
    // The final frontier is the root's a-fact.
    //
    // Build spine blocks from the top: root, then for i = n_up-1 … 1 the
    // block {a: steps[i-1].frontier, b: steps[i].partner}, then branching.
    for i in (1..n_up).rev() {
        let parent = blocks.len() - 1;
        blocks.push(TpBlock {
            a: Some(up.steps[i - 1].frontier.clone()),
            b: Some(up.steps[i].partner.clone()),
            parent: Some(parent),
        });
    }
    // Branching block: {a: e, b: steps[0].partner}.
    let branching_idx = blocks.len();
    blocks.push(TpBlock {
        a: Some(center.e.clone()),
        b: Some(up.steps[0].partner.clone()),
        parent: Some(branching_idx - 1),
    });

    // Down arms: starting fact sits in the child block.
    for (start, chain) in [(&center.d, down_d), (&center.f, down_f)] {
        let mut parent = branching_idx;
        if chain.steps.is_empty() {
            blocks.push(TpBlock {
                a: None,
                b: Some(start.clone()),
                parent: Some(parent),
            });
            continue;
        }
        // Child block: {b: start, a: steps[0].partner}.
        blocks.push(TpBlock {
            a: Some(chain.steps[0].partner.clone()),
            b: Some(start.clone()),
            parent: Some(parent),
        });
        parent = blocks.len() - 1;
        for i in 1..chain.steps.len() {
            blocks.push(TpBlock {
                a: Some(chain.steps[i].partner.clone()),
                b: Some(chain.steps[i - 1].frontier.clone()),
                parent: Some(parent),
            });
            parent = blocks.len() - 1;
        }
        let leaf = chain.steps.last().expect("nonempty").frontier.clone();
        blocks.push(TpBlock {
            a: None,
            b: Some(leaf),
            parent: Some(parent),
        });
    }

    // Distinct blocks: reject key collisions early.
    let mut keys: HashSet<Vec<Elem>> = HashSet::new();
    for b in &blocks {
        let fact =
            b.a.as_ref()
                .or(b.b.as_ref())
                .expect("every block holds a fact");
        if !keys.insert(fact.key(sig).to_vec()) {
            return None;
        }
    }
    Some(Tripath { blocks })
}

/// Enumerate assembled, validated tripaths for one center, passing each to
/// `sink`; `sink` returns `true` to stop early.
fn for_each_assembly(
    q: &Query,
    center: &CenterCandidate,
    cfg: &SearchConfig,
    exhausted: &mut bool,
    mut sink: impl FnMut(Tripath, TripathKind) -> bool,
) -> bool {
    let sig = q.signature();
    let used: HashSet<Vec<Elem>> = [&center.d, &center.e, &center.f]
        .into_iter()
        .map(|f| f.key(sig).to_vec())
        .collect();
    let up = arm_chains(q, &center.e, &center.g, &used, cfg.arm);
    let dd = arm_chains(q, &center.d, &center.g, &used, cfg.arm);
    let df = arm_chains(q, &center.f, &center.g, &used, cfg.arm);
    *exhausted |= !(up.complete && dd.complete && df.complete);
    let ups: Vec<&ArmChain> = up.chains.iter().filter(|c| !c.steps.is_empty()).collect();
    let mut assemblies = 0usize;
    for u in &ups {
        for d_chain in &dd.chains {
            for f_chain in &df.chains {
                assemblies += 1;
                if assemblies > cfg.max_assemblies {
                    *exhausted = true;
                    return false;
                }
                if let Some(tp) = assemble_tripath(q, center, u, d_chain, f_chain) {
                    if let Ok((kind, _)) = tp.validate(q) {
                        if sink(tp, kind) {
                            return true;
                        }
                    }
                }
            }
        }
    }
    false
}

/// Search for fork- and triangle-tripaths of a 2way-determined query.
///
/// # Panics
/// Panics when `q` is not 2way-determined — tripaths are only defined
/// (and only needed) for that class.
pub fn search_tripaths(q: &Query, cfg: &SearchConfig) -> SearchOutcome {
    assert!(
        is_2way_determined(q),
        "tripath search requires a 2way-determined query"
    );
    let mut outcome = SearchOutcome::default();
    let centers = center_candidates(q, cfg.full_partition_limit);
    if centers.len() > cfg.max_centers {
        outcome.exhausted = true;
    }
    for center in centers.iter().take(cfg.max_centers) {
        let want_fork = !center.triangle && outcome.fork.is_none();
        let want_triangle = center.triangle && outcome.triangle.is_none();
        if !want_fork && !want_triangle {
            continue;
        }
        let mut exhausted = outcome.exhausted;
        for_each_assembly(q, center, cfg, &mut exhausted, |tp, kind| {
            match kind {
                TripathKind::Fork if outcome.fork.is_none() => outcome.fork = Some(tp),
                TripathKind::Triangle if outcome.triangle.is_none() => outcome.triangle = Some(tp),
                _ => {}
            }
            outcome.fork.is_some() && outcome.triangle.is_some()
        });
        outcome.exhausted = exhausted;
        if outcome.fork.is_some() && outcome.triangle.is_some() {
            break;
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqa_query::examples;

    #[test]
    fn q2_admits_a_fork_tripath() {
        let out = search_tripaths(&examples::q2(), &SearchConfig::default());
        let fork = out.fork.expect("q2 admits a fork-tripath (Section 9)");
        let (kind, center) = fork.validate(&examples::q2()).unwrap();
        assert_eq!(kind, TripathKind::Fork);
        assert_eq!(center.g.len(), 1);
    }

    #[test]
    fn q5_admits_no_tripath() {
        let out = search_tripaths(&examples::q5(), &SearchConfig::default());
        assert!(out.fork.is_none(), "q5 admits no tripath (Section 8)");
        assert!(out.triangle.is_none());
        assert!(
            !out.exhausted,
            "q5's absence should be budget-independent (no center)"
        );
    }

    #[test]
    fn q6_admits_triangle_but_no_fork() {
        let out = search_tripaths(&examples::q6(), &SearchConfig::default());
        assert!(
            out.triangle.is_some(),
            "q6 admits a triangle-tripath (Section 10)"
        );
        let (kind, _) = out
            .triangle
            .as_ref()
            .unwrap()
            .validate(&examples::q6())
            .unwrap();
        assert_eq!(kind, TripathKind::Triangle);
        assert!(
            out.fork.is_none(),
            "q6 admits no fork-tripath (Theorem 10.4 discussion)"
        );
    }

    #[test]
    #[should_panic(expected = "2way-determined")]
    fn rejects_non_2way_determined_queries() {
        let _ = search_tripaths(&examples::q3(), &SearchConfig::default());
    }
}
