//! Robustness of the tripath search over *random* 2way-determined queries:
//! every witness must validate, classifications must be stable, and the
//! machinery must never panic.

use cqa_model::Signature;
use cqa_query::conditions::is_2way_determined;
use cqa_query::{Atom, Query};
use cqa_tripath::{check_nice, find_nice_fork, search_tripaths, ArmConfig, SearchConfig};
use proptest::prelude::*;

fn atom_strategy(arity: usize, pool: usize) -> impl Strategy<Value = Atom> {
    proptest::collection::vec(0..pool, arity)
        .prop_map(|idx| Atom::r(idx.into_iter().map(|i| format!("v{i}")).collect::<Vec<_>>()))
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (2usize..=4)
        .prop_flat_map(|arity| (Just(arity), 1..arity))
        .prop_flat_map(|(arity, key_len)| {
            (
                Just(Signature::new(arity, key_len).unwrap()),
                atom_strategy(arity, 4),
                atom_strategy(arity, 4),
            )
        })
        .prop_map(|(sig, a, b)| Query::new(sig, a, b).unwrap())
}

fn small_config() -> SearchConfig {
    SearchConfig {
        full_partition_limit: 5,
        arm: ArmConfig {
            max_depth: 6,
            max_states: 500,
            max_chains: 6,
        },
        max_centers: 300,
        max_assemblies: 128,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn search_never_panics_and_witnesses_validate(q in query_strategy()) {
        prop_assume!(is_2way_determined(&q));
        let out = search_tripaths(&q, &small_config());
        if let Some(tp) = &out.fork {
            let (kind, _) = tp.validate(&q).expect("fork witness must validate");
            prop_assert_eq!(kind, cqa_tripath::TripathKind::Fork);
        }
        if let Some(tp) = &out.triangle {
            let (kind, _) = tp.validate(&q).expect("triangle witness must validate");
            prop_assert_eq!(kind, cqa_tripath::TripathKind::Triangle);
        }
    }

    #[test]
    fn nice_forks_pass_the_checker(q in query_strategy()) {
        prop_assume!(is_2way_determined(&q));
        if let Some((tp, _w)) = find_nice_fork(&q, &small_config()) {
            prop_assert!(check_nice(&q, &tp).is_ok(), "find_nice_fork returned a non-nice tripath");
        }
    }

    #[test]
    fn fork_witnesses_embed_into_their_own_database(q in query_strategy()) {
        prop_assume!(is_2way_determined(&q));
        let out = search_tripaths(&q, &small_config());
        if let Some(tp) = &out.fork {
            let db = tp.database(&q);
            // The detector re-finds *some* tripath inside the witness db.
            let det = cqa_tripath::find_tripath_in_db(&q, &db, 2_000_000);
            prop_assert!(det.contains_tripath() || det.exhausted);
        }
    }
}
