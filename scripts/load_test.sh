#!/usr/bin/env bash
# Concurrent load harness for `cqa serve`: many clients × mixed query
# batches over skewed databases, with a correctness diff against the
# single-shot CLI and a queries/second summary for BASELINES.md.
#
# Tunables (environment):
#   CLIENTS  concurrent client processes        (default 4)
#   ROUNDS   batches each client sends per db   (default 5)
#   FACTS    facts per generated database       (default 20000)
#   PORT     server port                        (default 7951)
#   BUDGET   server --memory-budget             (default 64m)
#   MODE     throughput | overload              (default throughput)
#
# MODE=throughput reports two rates: per-request-process (a fresh `cqa
# client` process and TCP connection per batch) and persistent (one
# connection reused across all rounds via `client --repeat`).
#
# MODE=overload points many clients at a one-worker server twice — a
# tight --max-queue (admission control on) vs an effectively unbounded
# queue (off) — and reports shed count, shed-rate and p99 latency for
# each; every shed client must still land the exact CLI verdict via
# --retries, and the tight run must shed at least once or the script
# fails. Extra knobs: OCLIENTS (default 8), OREQS (default 20), QUEUE
# (default 2).
#
# The databases come from the `cqa generate --skew` families (the same
# presets the fleet differential runner rotates through); the batch is
# the docs/SERVER.md mixed five-query set. Every client's output is
# diffed against `cqa batch` byte-for-byte before the rate is reported,
# so a fast-but-wrong server cannot post a number.
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS=${CLIENTS:-4}
ROUNDS=${ROUNDS:-5}
FACTS=${FACTS:-20000}
PORT=${PORT:-7951}
BUDGET=${BUDGET:-64m}
MODE=${MODE:-throughput}
ADDR="127.0.0.1:$PORT"

cargo build --release -p cqa-cli >/dev/null
CQA=target/release/cqa

work=$(mktemp -d "${TMPDIR:-/tmp}/cqa-load.XXXXXX")
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$work"' EXIT

# Skewed databases: two seeds of the mixed-batch family, the one preset
# whose key domain scales with the fact count. (uniform/zipf-contested/
# heavy-hitter keep fleet-scale domains, so at thousands of facts they
# become enormous-block Cert_k stress shapes — bench material, not
# serving-throughput material; see BASELINES.md.)
"$CQA" generate --facts "$FACTS" --skew mixed-batch --seed 41 "$work/mixed-a.facts" >/dev/null
"$CQA" generate --facts "$FACTS" --skew mixed-batch --seed 42 "$work/mixed-b.facts" >/dev/null
DBS=("$work/mixed-a.facts" "$work/mixed-b.facts")

cat > "$work/queries.txt" <<'EOF'
# mixed load batch (docs/SERVER.md)
R(x | y) R(y | z)
R(x | y) R(x | z)
R(y | x) R(x | x)
R(y | x) R(x | y)
R(x | y) R(y | z)
EOF
QUERIES_PER_BATCH=5

wait_ready() {
  for _ in $(seq 1 50); do
    if "$CQA" client "$ADDR" ping >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  "$CQA" client "$ADDR" ping >/dev/null
}

if [ "$MODE" = overload ]; then
  OCLIENTS=${OCLIENTS:-8}
  OREQS=${OREQS:-20}
  QUEUE=${QUEUE:-2}
  QUERY='R(x | y) R(y | z)'
  DB="${DBS[0]}"
  REF=$("$CQA" certain "$QUERY" "$DB" | grep '^certain:')

  overload_run() {
    local max_queue="$1" tag="$2"
    "$CQA" serve --addr "$ADDR" --threads 1 --max-queue "$max_queue" --stats \
      2> "$work/serve-$tag.err" &
    local spid=$!
    wait_ready
    local pids=()
    local c
    for c in $(seq 1 "$OCLIENTS"); do
      (
        for _ in $(seq 1 "$OREQS"); do
          t0=$(date +%s%N)
          out=$("$CQA" client --retries 12 --retry-seed "$c" "$ADDR" certain "$DB" "$QUERY")
          t1=$(date +%s%N)
          if [ "$out" != "$REF" ]; then
            echo "overload[$tag] parity break: got '$out' want '$REF'" >&2
            exit 1
          fi
          echo $(( (t1 - t0) / 1000000 )) >> "$work/lat-$tag-$c"
        done
      ) &
      pids+=($!)
    done
    local pid
    for pid in "${pids[@]}"; do wait "$pid"; done
    "$CQA" client "$ADDR" stats | awk '$1 == "shed" {print $2}' > "$work/shed-$tag"
    "$CQA" client "$ADDR" shutdown >/dev/null
    wait "$spid" || true
    sort -n "$work"/lat-"$tag"-* > "$work/lat-$tag.all"
    awk -v tag="$tag" -v shed="$(cat "$work/shed-$tag")" \
        -v total=$(( OCLIENTS * OREQS )) '
      { a[NR] = $1 }
      END {
        i = int(NR * 0.99); if (i < 1) i = 1
        printf "load_test overload[%s]: requests=%d shed=%d shed-rate=%.2f p99=%dms\n",
               tag, total, shed, shed / (total + shed), a[i]
      }' "$work/lat-$tag.all"
  }

  overload_run "$QUEUE" admission-on
  overload_run 1000000 admission-off
  if [ "$(cat "$work/shed-admission-on")" -le 0 ]; then
    echo "load_test overload: expected at least one shed with --max-queue $QUEUE" >&2
    exit 1
  fi
  exit 0
fi

"$CQA" serve --addr "$ADDR" --memory-budget "$BUDGET" --stats &
SERVER_PID=$!

wait_ready

# Correctness gate: server batch output must be byte-identical to the
# single-shot CLI on every database before any rate is recorded. The CLI
# outputs double as the reference for the per-client post-run diff.
for db in "${DBS[@]}"; do
  "$CQA" client "$ADDR" batch "$db" "$work/queries.txt" > "$work/server.out"
  "$CQA" batch "$db" "$work/queries.txt" > "$work/cli-ref-$(basename "$db").out"
  diff -u "$work/cli-ref-$(basename "$db").out" "$work/server.out" >&2
done
echo "load_test: parity gate passed on ${#DBS[@]} databases" >&2

run_client() {
  local out="$1"
  for _ in $(seq 1 "$ROUNDS"); do
    for db in "${DBS[@]}"; do
      "$CQA" client "$ADDR" batch "$db" "$work/queries.txt" >> "$out"
    done
  done
}

start_ns=$(date +%s%N)
pids=()
for c in $(seq 1 "$CLIENTS"); do
  run_client "$work/client-$c.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
elapsed_ns=$(( $(date +%s%N) - start_ns ))

# Post-run correctness: every client saw the same (repeated) verdicts.
ref="$work/ref.out"
: > "$ref"
for _ in $(seq 1 "$ROUNDS"); do
  for db in "${DBS[@]}"; do cat "$work/cli-ref-$(basename "$db").out"; done
done >> "$ref"
for c in $(seq 1 "$CLIENTS"); do
  diff -u "$ref" "$work/client-$c.out" >&2
done

# Persistent-connection mode: the same request volume, but each client
# reuses ONE connection per database for all its rounds via `--repeat`
# (which also asserts the repeated responses are byte-identical). The
# gap between this rate and the one above is pure per-request process +
# connection setup cost.
persist_client() {
  local c="$1"
  for db in "${DBS[@]}"; do
    "$CQA" client --repeat "$ROUNDS" "$ADDR" batch "$db" "$work/queries.txt" \
      > "$work/persist-$c-$(basename "$db").out"
  done
}

persist_start_ns=$(date +%s%N)
pids=()
for c in $(seq 1 "$CLIENTS"); do
  persist_client "$c" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
persist_elapsed_ns=$(( $(date +%s%N) - persist_start_ns ))

# `--repeat` prints one copy; it must match the CLI reference exactly.
for c in $(seq 1 "$CLIENTS"); do
  for db in "${DBS[@]}"; do
    diff -u "$work/cli-ref-$(basename "$db").out" \
            "$work/persist-$c-$(basename "$db").out" >&2
  done
done

queries=$(( CLIENTS * ROUNDS * ${#DBS[@]} * QUERIES_PER_BATCH ))
"$CQA" client "$ADDR" stats
"$CQA" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID" || true

awk -v q="$queries" -v ns="$elapsed_ns" -v c="$CLIENTS" -v r="$ROUNDS" -v d="${#DBS[@]}" 'BEGIN {
  s = ns / 1e9
  printf "load_test: clients=%d rounds=%d dbs=%d queries=%d elapsed=%.2fs qps=%.0f\n", c, r, d, q, s, q / s
}'
awk -v q="$queries" -v ns="$persist_elapsed_ns" 'BEGIN {
  s = ns / 1e9
  printf "load_test: persistent-connection elapsed=%.2fs qps=%.0f\n", s, q / s
}'
