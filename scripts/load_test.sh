#!/usr/bin/env bash
# Concurrent load harness for `cqa serve`: many clients × mixed query
# batches over skewed databases, with a correctness diff against the
# single-shot CLI and a queries/second summary for BASELINES.md.
#
# Tunables (environment):
#   CLIENTS  concurrent client processes        (default 4)
#   ROUNDS   batches each client sends per db   (default 5)
#   FACTS    facts per generated database       (default 20000)
#   PORT     server port                        (default 7951)
#   BUDGET   server --memory-budget             (default 64m)
#
# The databases come from the `cqa generate --skew` families (the same
# presets the fleet differential runner rotates through); the batch is
# the docs/SERVER.md mixed five-query set. Every client's output is
# diffed against `cqa batch` byte-for-byte before the rate is reported,
# so a fast-but-wrong server cannot post a number.
set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS=${CLIENTS:-4}
ROUNDS=${ROUNDS:-5}
FACTS=${FACTS:-20000}
PORT=${PORT:-7951}
BUDGET=${BUDGET:-64m}
ADDR="127.0.0.1:$PORT"

cargo build --release -p cqa-cli >/dev/null
CQA=target/release/cqa

work=$(mktemp -d "${TMPDIR:-/tmp}/cqa-load.XXXXXX")
trap 'rm -rf "$work"' EXIT

# Skewed databases: two seeds of the mixed-batch family, the one preset
# whose key domain scales with the fact count. (uniform/zipf-contested/
# heavy-hitter keep fleet-scale domains, so at thousands of facts they
# become enormous-block Cert_k stress shapes — bench material, not
# serving-throughput material; see BASELINES.md.)
"$CQA" generate --facts "$FACTS" --skew mixed-batch --seed 41 "$work/mixed-a.facts" >/dev/null
"$CQA" generate --facts "$FACTS" --skew mixed-batch --seed 42 "$work/mixed-b.facts" >/dev/null
DBS=("$work/mixed-a.facts" "$work/mixed-b.facts")

cat > "$work/queries.txt" <<'EOF'
# mixed load batch (docs/SERVER.md)
R(x | y) R(y | z)
R(x | y) R(x | z)
R(y | x) R(x | x)
R(y | x) R(x | y)
R(x | y) R(y | z)
EOF
QUERIES_PER_BATCH=5

"$CQA" serve --addr "$ADDR" --memory-budget "$BUDGET" --stats &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$work"' EXIT

for _ in $(seq 1 50); do
  if "$CQA" client "$ADDR" ping >/dev/null 2>&1; then break; fi
  sleep 0.1
done
"$CQA" client "$ADDR" ping >/dev/null

# Correctness gate: server batch output must be byte-identical to the
# single-shot CLI on every database before any rate is recorded. The CLI
# outputs double as the reference for the per-client post-run diff.
for db in "${DBS[@]}"; do
  "$CQA" client "$ADDR" batch "$db" "$work/queries.txt" > "$work/server.out"
  "$CQA" batch "$db" "$work/queries.txt" > "$work/cli-ref-$(basename "$db").out"
  diff -u "$work/cli-ref-$(basename "$db").out" "$work/server.out" >&2
done
echo "load_test: parity gate passed on ${#DBS[@]} databases" >&2

run_client() {
  local out="$1"
  for _ in $(seq 1 "$ROUNDS"); do
    for db in "${DBS[@]}"; do
      "$CQA" client "$ADDR" batch "$db" "$work/queries.txt" >> "$out"
    done
  done
}

start_ns=$(date +%s%N)
pids=()
for c in $(seq 1 "$CLIENTS"); do
  run_client "$work/client-$c.out" &
  pids+=($!)
done
for pid in "${pids[@]}"; do wait "$pid"; done
elapsed_ns=$(( $(date +%s%N) - start_ns ))

# Post-run correctness: every client saw the same (repeated) verdicts.
ref="$work/ref.out"
: > "$ref"
for _ in $(seq 1 "$ROUNDS"); do
  for db in "${DBS[@]}"; do cat "$work/cli-ref-$(basename "$db").out"; done
done >> "$ref"
for c in $(seq 1 "$CLIENTS"); do
  diff -u "$ref" "$work/client-$c.out" >&2
done

queries=$(( CLIENTS * ROUNDS * ${#DBS[@]} * QUERIES_PER_BATCH ))
"$CQA" client "$ADDR" stats
"$CQA" client "$ADDR" shutdown >/dev/null
wait "$SERVER_PID" || true

awk -v q="$queries" -v ns="$elapsed_ns" -v c="$CLIENTS" -v r="$ROUNDS" -v d="${#DBS[@]}" 'BEGIN {
  s = ns / 1e9
  printf "load_test: clients=%d rounds=%d dbs=%d queries=%d elapsed=%.2fs qps=%.0f\n", c, r, d, q, s, q / s
}'
