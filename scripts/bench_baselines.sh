#!/usr/bin/env bash
# Re-run the five BASELINES.md bench commands in recording order.
#
# Use this when re-measuring on new hardware (e.g. the pending multi-core
# re-measurement noted in ROADMAP.md): run it, then update the tables and
# the host line in BASELINES.md from the printed medians.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo bench -p cqa-bench --bench certk_scaling     # Cert₂ series (E4/E10)
cargo bench -p cqa-bench --bench matching_scaling  # ¬matching series (E7)
cargo bench -p cqa-bench --bench combined          # combined vs literal (E8)
cargo bench -p cqa-bench --bench combined_parallel # 1-thread vs N-thread
cargo bench -p cqa-bench --bench large_scale       # 10⁴..10⁶ series + routing + early-exit + batch
