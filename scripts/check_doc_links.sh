#!/usr/bin/env bash
# Check that every intra-repository markdown link in the top-level docs
# resolves to an existing file, so handbook links cannot rot.
#
# Covered: README.md, ARCHITECTURE.md, BASELINES.md, ROADMAP.md and
# docs/*.md. External links (http/https) and pure #anchor links are
# skipped; a `path#anchor` link is checked for the file part only.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for doc in README.md ARCHITECTURE.md BASELINES.md ROADMAP.md docs/*.md; do
  [ -f "$doc" ] || continue
  dir=$(dirname "$doc")
  # Markdown inline links: capture the (...) target of [text](target).
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    file=${target%%#*}
    [ -n "$file" ] || continue
    # Resolve relative to the linking document only — that is how GitHub
    # renders relative links, so a repo-root fallback would wave through
    # links that 404 when rendered.
    if [ ! -e "$dir/$file" ]; then
      echo "BROKEN LINK: $doc -> $target" >&2
      fail=1
    fi
  done < <(grep -o ']([^)]*)' "$doc" | sed 's/^](//; s/)$//')
done

if [ "$fail" -ne 0 ]; then
  echo "doc link check failed" >&2
  exit 1
fi
echo "doc links OK"
