//! Quickstart: classify the paper's seven example queries and answer
//! `certain(q)` on a small inconsistent database.
//!
//! Run with `cargo run -p cqa --example quickstart`.

use cqa::{classify, Complexity, CqaEngine};
use cqa_model::{Database, Fact, Signature};
use cqa_query::{examples, parse_query};

fn main() {
    // --- 1. The dichotomy, on the paper's running examples --------------
    println!("Classification of the paper's example queries:");
    println!("{:<4} {:<58} {:<16} rule", "name", "query", "complexity");
    for (name, q) in examples::all() {
        let c = classify(&q);
        println!(
            "{:<4} {:<58} {:<16} {:?}",
            name,
            q.display(),
            format!("{:?}", c.complexity),
            c.rule
        );
    }

    // --- 2. Answering certain(q) on an inconsistent database ------------
    // q3 = R(x | y) R(y | z): "some manager's manager exists".
    let q3 = parse_query("R(x | y) R(y | z)").expect("valid query");
    let engine = CqaEngine::new(q3);
    assert_eq!(engine.classification().complexity, Complexity::PTimeCert2);

    // An inconsistent reporting table: alice's manager is recorded twice.
    let mut db = Database::new(Signature::new(2, 1).unwrap());
    for row in [
        ["alice", "bob"],
        ["alice", "carol"],
        ["bob", "dave"],
        ["carol", "dave"],
    ] {
        db.insert(Fact::from_names(row)).expect("arity matches");
    }
    println!(
        "\nDatabase ({} facts, {} repairs):",
        db.len(),
        db.repair_count()
    );
    println!("{db:?}");

    let answer = engine.certain(&db);
    println!(
        "certain(q3) = {} (answered by {:?})",
        answer.certain, answer.answered_by
    );
    // Both candidate managers of alice themselves have a manager, so the
    // query is certain despite the inconsistency.
    assert!(answer.certain);

    // Removing carol -> dave breaks one of the two paths: no longer certain.
    let mut db2 = Database::new(Signature::new(2, 1).unwrap());
    for row in [["alice", "bob"], ["alice", "carol"], ["bob", "dave"]] {
        db2.insert(Fact::from_names(row)).expect("arity matches");
    }
    let answer2 = engine.certain(&db2);
    println!(
        "after dropping carol→dave: certain(q3) = {}",
        answer2.certain
    );
    assert!(!answer2.certain);
}
