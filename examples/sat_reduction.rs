//! The coNP-hardness gadget, end to end (Section 9, Figure 2).
//!
//! Takes the paper's Figure 2 formula
//! `(¬s ∨ t ∨ u) ∧ (¬s ∨ ¬t ∨ u) ∧ (s ∨ ¬t ∨ ¬u)`, finds a *nice
//! fork-tripath* for `q2 = R(x u | x y) R(u y | x z)` (the machine's
//! Figure 1c), builds the gadget database `D[φ]`, and checks Lemma 9.2
//! with two independent engines: a DPLL SAT solver on `φ` and repair
//! search on `D[φ]`.
//!
//! Run with `cargo run --release -p cqa --example sat_reduction`.

use cqa::reductions::SatReduction;
use cqa::sat::{solve, to_occ3_normal_form, Cnf, Lit, PVar, SatResult};
use cqa::solvers::{certain_brute_budgeted, BruteOutcome};
use cqa::tripath::SearchConfig;
use cqa_query::examples;

fn main() {
    let q2 = examples::q2();
    println!(
        "query: {}  (2way-determined, admits a fork-tripath)",
        q2.display()
    );

    // 1. Find the nice fork-tripath — the reduction's gadget.
    let reduction =
        SatReduction::new(&q2, &SearchConfig::default()).expect("q2 admits a nice fork-tripath");
    let tp = reduction.tripath();
    println!("\nnice fork-tripath ({} blocks):", tp.blocks.len());
    for (i, b) in tp.blocks.iter().enumerate() {
        let parent = b
            .parent
            .map(|p| p.to_string())
            .unwrap_or_else(|| "-".into());
        println!(
            "  block {i:>2} (parent {parent:>2}): a = {:<28} b = {}",
            b.a.as_ref()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "·".into()),
            b.b.as_ref()
                .map(|f| f.to_string())
                .unwrap_or_else(|| "·".into()),
        );
    }
    let w = reduction.witness();
    println!(
        "witnesses: x={} y={} z={} u={} v={} w={}",
        w.x, w.y, w.z, w.u, w.v, w.w
    );

    // 2. The Figure 2 formula, normalised to ≤3 occurrences per variable.
    let (s, t, u) = (PVar(0), PVar(1), PVar(2));
    let phi = Cnf::from_clauses([
        vec![Lit::neg(s), Lit::pos(t), Lit::pos(u)],
        vec![Lit::neg(s), Lit::neg(t), Lit::pos(u)],
        vec![Lit::pos(s), Lit::neg(t), Lit::neg(u)],
    ]);
    println!("\nφ = {phi}");
    let norm = to_occ3_normal_form(&phi);
    println!("normal form ({} clauses): {norm}", norm.len());

    // 3. Build D[φ] and compare both sides of Lemma 9.2.
    let db = reduction.database(&norm).expect("normal form accepted");
    println!(
        "\nD[φ]: {} facts, {} blocks, {} repairs",
        db.len(),
        db.block_count(),
        db.repair_count()
    );

    let sat = match solve(&norm) {
        SatResult::Sat(assignment) => {
            let mut vars: Vec<_> = assignment.iter().collect();
            vars.sort_by_key(|(v, _)| **v);
            println!("DPLL: satisfiable, e.g. {vars:?}");
            true
        }
        SatResult::Unsat => {
            println!("DPLL: unsatisfiable");
            false
        }
    };

    match certain_brute_budgeted(&q2, &db, 500_000_000) {
        BruteOutcome::Certain => {
            println!("repair search: every repair satisfies q2 → certain");
            assert!(!sat, "Lemma 9.2 violated");
        }
        BruteOutcome::NotCertain(repair) => {
            println!(
                "repair search: found a falsifying repair ({} facts) → not certain",
                repair.len()
            );
            assert!(sat, "Lemma 9.2 violated");
        }
        BruteOutcome::BudgetExhausted => println!("repair search: budget exhausted (inconclusive)"),
    }
    println!("\nLemma 9.2 verified: φ satisfiable ⟺ D[φ] ⊭ certain(q2) ✓");
}
