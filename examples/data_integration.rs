//! Data integration scenario (the paper's introduction): merging on-call
//! rotation tables from two sources produces primary-key violations;
//! instead of arbitrarily cleaning, answer queries *certainly* over all
//! repairs.
//!
//! Schema: `OnCall(engineer | first_backup, second_backup)` — signature
//! `[3, 1]`, engineer is the key. Query (the paper's clique-query `q6`):
//!
//! ```text
//! ∃x y z  OnCall(x | y z) ∧ OnCall(z | x y)
//! ```
//!
//! — "some engineer `x` has second backup `z` whose own backups are
//! `(x, y)`": a rotation-cycle probe. `q6` is PTime but *only* via the
//! bipartite-matching algorithm (Theorems 10.1, 10.4).
//!
//! Run with `cargo run -p cqa --example data_integration`.

use cqa::{classify, AnsweredBy, Complexity, CqaEngine};
use cqa_model::{Database, Fact, Signature};
use cqa_query::parse_query;

fn oncall(engineer: &str, first: &str, second: &str) -> Fact {
    Fact::from_names([engineer, first, second])
}

fn main() {
    let probe = parse_query("R(x | y z) R(z | x y)").expect("valid query");
    let classification = classify(&probe);
    println!("rotation-cycle probe: {}", probe.display());
    println!(
        "classification: {:?} via {:?} ({:?})",
        classification.complexity, classification.rule, classification.confidence
    );
    assert_eq!(classification.complexity, Complexity::PTimeCombined);

    // Merge two rotation tables. They disagree on alice's backup order —
    // a key violation that survives the merge.
    let mut db = Database::new(Signature::new(3, 1).unwrap());
    for fact in [
        oncall("alice", "bob", "carol"), // source A
        oncall("alice", "carol", "bob"), // source B — conflicts with A
        oncall("carol", "alice", "bob"),
        oncall("bob", "carol", "alice"),
    ] {
        db.insert(fact).expect("arity matches");
    }
    println!(
        "\nmerged rotation: {} facts, {} blocks, {} repairs",
        db.len(),
        db.block_count(),
        db.repair_count()
    );
    println!("{db:?}");

    let engine = CqaEngine::new(probe.clone());
    let answer = engine.certain(&db);
    println!(
        "rotation cycle certain? {} (via {:?})",
        answer.certain, answer.answered_by
    );
    assert_eq!(answer.answered_by, AnsweredBy::Combined);
    // Whichever of alice's records wins, carol and bob still close a
    // cycle: the probe is certain despite the inconsistency.
    assert!(answer.certain);

    // If bob's record is lost, source B's version of alice breaks every
    // cycle in its repair — no longer certain.
    let mut db2 = Database::new(Signature::new(3, 1).unwrap());
    for fact in [
        oncall("alice", "bob", "carol"),
        oncall("alice", "carol", "bob"),
        oncall("carol", "alice", "bob"),
    ] {
        db2.insert(fact).expect("arity matches");
    }
    let answer2 = engine.certain(&db2);
    println!("after losing bob's row: certain? {}", answer2.certain);
    assert!(!answer2.certain);
}
