//! Side-by-side comparison of every `certain(q)` algorithm in the paper on
//! one instance family — including the case Theorem 10.1 is about, where
//! the greedy fixpoint `Cert_k` *fails* and the matching-based algorithm is
//! required.
//!
//! Run with `cargo run --release -p cqa --example algorithm_comparison`.

use cqa::solvers::{certain_brute, certain_by_matching, certain_combined, certk, CertKConfig};
use cqa_query::examples;
use cqa_workloads::{q6_cert2_breaker, q6_certk_hard, q6_triangle_grid};

fn main() {
    let q6 = examples::q6();
    println!(
        "query: q6 = {}   (clique-query; triangle-tripath, no fork)",
        q6.display()
    );
    println!();
    println!(
        "{:<28} {:>6} {:>8} {:>8} {:>10} {:>10}",
        "instance", "facts", "brute", "Cert_2", "¬matching", "combined"
    );

    let mut certk_failures = 0;
    let mut instances: Vec<(String, cqa_model::Database)> = Vec::new();
    for n in [1, 2, 4] {
        instances.push((format!("triangle-grid({n})"), q6_triangle_grid(n)));
    }
    for n in [2, 3, 4, 5, 6] {
        instances.push((format!("triangle-cycle({n})"), q6_certk_hard(n)));
    }
    instances.push(("cert2-breaker (Thm 10.1)".into(), q6_cert2_breaker()));

    for (name, db) in &instances {
        let brute = certain_brute(&q6, db);
        let ck = certk(&q6, db, CertKConfig::new(2)).is_certain();
        let matching = certain_by_matching(&q6, db);
        let combined = certain_combined(&q6, db, CertKConfig::new(2)).certain;
        println!(
            "{:<28} {:>6} {:>8} {:>8} {:>10} {:>10}",
            name,
            db.len(),
            brute,
            ck,
            matching,
            combined
        );
        // Soundness: every polynomial algorithm under-approximates.
        assert!(!ck || brute, "Cert_2 unsound on {name}");
        assert!(!matching || brute, "¬matching unsound on {name}");
        // Completeness of the Theorem 10.5 combination on this
        // fork-tripath-free query:
        assert_eq!(combined, brute, "combined solver wrong on {name}");
        if brute && !ck {
            certk_failures += 1;
        }
    }

    println!();
    if certk_failures > 0 {
        println!(
            "Theorem 10.1 in action: {certk_failures} certain instance(s) that Cert_2 \
             cannot derive — the matching-based algorithm is genuinely needed \
             for triangle-tripath queries."
        );
    } else {
        println!("note: no Cert_2 failure surfaced in this run's instances");
    }
}
