//! Integration: the solver agreement matrix on randomized databases.
//!
//! * brute force ⊇ `Cert_k` (soundness of the fixpoint, any query),
//! * brute force ⊇ `¬matching` (Prop 10.2, 2way-determined queries),
//! * brute force = `Cert₂` on Theorem 6.1 queries,
//! * brute force = `Cert_k` on no-tripath queries (Prop 8.2),
//! * brute force = combined on fork-free 2way-determined queries
//!   (Thm 10.5),
//! * backtracking brute force = definitional repair enumeration.

use cqa::solvers::{
    certain_brute, certain_by_matching, certain_combined, certain_exhaustive, certk, CertKConfig,
};
use cqa_query::examples;
use cqa_workloads::{random_db, RandomDbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: usize = 60;

fn cfg_for(q: &cqa_query::Query) -> RandomDbConfig {
    // Keep repairs enumerable for the exhaustive cross-check.
    let _ = q;
    RandomDbConfig {
        blocks: 5,
        max_block_size: 3,
        domain: 3,
    }
}

#[test]
fn backtracking_equals_exhaustive_enumeration() {
    for (name, q) in examples::all() {
        // q7's arity-14 random instances rarely produce solutions but the
        // check still exercises the machinery.
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        for t in 0..TRIALS / 3 {
            let db = random_db(&mut rng, &q, &cfg_for(&q));
            assert_eq!(
                certain_brute(&q, &db),
                certain_exhaustive(&q, &db),
                "{name} trial {t}: {db:?}"
            );
        }
    }
}

#[test]
fn certk_is_sound_for_every_query() {
    for (name, q) in examples::all() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        for t in 0..TRIALS / 2 {
            let db = random_db(&mut rng, &q, &cfg_for(&q));
            for k in 1..=3 {
                if certk(&q, &db, CertKConfig::new(k)).is_certain() {
                    assert!(
                        certain_brute(&q, &db),
                        "{name} trial {t} k={k}: Cert_k unsound"
                    );
                }
            }
        }
    }
}

#[test]
fn matching_is_sound_for_2way_determined_queries() {
    for (name, q) in [
        ("q2", examples::q2()),
        ("q5", examples::q5()),
        ("q6", examples::q6()),
    ] {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        for t in 0..TRIALS {
            let db = random_db(&mut rng, &q, &cfg_for(&q));
            if certain_by_matching(&q, &db) {
                assert!(
                    certain_brute(&q, &db),
                    "{name} trial {t}: ¬matching unsound"
                );
            }
        }
    }
}

#[test]
fn cert2_exact_on_thm61_queries() {
    for (name, q) in [("q3", examples::q3()), ("q4", examples::q4())] {
        let mut rng = StdRng::seed_from_u64(0xD1CE);
        for t in 0..TRIALS {
            let db = random_db(&mut rng, &q, &cfg_for(&q));
            assert_eq!(
                certk(&q, &db, CertKConfig::new(2)).is_certain(),
                certain_brute(&q, &db),
                "{name} trial {t}: Theorem 6.1 violated on {db:?}"
            );
        }
    }
}

#[test]
fn certk_exact_on_no_tripath_query_q5() {
    // Proposition 8.2 with a practical k.
    let q = examples::q5();
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for t in 0..TRIALS {
        let db = random_db(&mut rng, &q, &cfg_for(&q));
        assert_eq!(
            certk(&q, &db, CertKConfig::new(3)).is_certain(),
            certain_brute(&q, &db),
            "trial {t}: Prop 8.2 violated on {db:?}"
        );
    }
}

#[test]
fn combined_exact_on_triangle_only_queries() {
    // Theorem 10.5 for q6 (fork-free): random + structured mixes.
    let q = examples::q6();
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for t in 0..TRIALS {
        let mut db = random_db(&mut rng, &q, &cfg_for(&q));
        if t % 2 == 0 {
            db.absorb(&cqa_workloads::q6_triangle_grid(1 + t % 2))
                .unwrap();
        }
        if t % 5 == 0 {
            db.absorb(&cqa_workloads::q6_cert2_breaker()).unwrap();
        }
        let combined = certain_combined(&q, &db, CertKConfig::new(2)).certain;
        assert_eq!(
            combined,
            certain_brute(&q, &db),
            "trial {t}: Thm 10.5 violated"
        );
    }
}

#[test]
fn combined_literal_and_component_variants_agree() {
    let q = examples::q6();
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for t in 0..TRIALS / 2 {
        let db = random_db(&mut rng, &q, &cfg_for(&q));
        // The literal Thm 10.5 statement uses Cert_k on the WHOLE database;
        // on fork-free queries both must equal certain (the per-component
        // variant is exact with smaller k thanks to Prop 10.6).
        let literal = cqa::solvers::certain_thm105_literal(&q, &db, CertKConfig::new(3));
        let brute = certain_brute(&q, &db);
        assert_eq!(
            literal, brute,
            "trial {t}: literal Thm 10.5 violated on {db:?}"
        );
    }
}

#[test]
fn engine_dispatch_is_exact_on_ptime_queries() {
    use cqa::CqaEngine;
    for (name, q) in [
        ("q3", examples::q3()),
        ("q4", examples::q4()),
        ("q5", examples::q5()),
        ("q6", examples::q6()),
    ] {
        let engine = CqaEngine::new(q.clone());
        let mut rng = StdRng::seed_from_u64(0xE49);
        for t in 0..TRIALS / 2 {
            let db = random_db(&mut rng, &q, &cfg_for(&q));
            let ans = engine.certain(&db);
            assert!(
                !ans.budget_exhausted,
                "{name} trial {t}: unexpected budget exhaustion"
            );
            assert_eq!(ans.certain, certain_brute(&q, &db), "{name} trial {t}");
        }
    }
}
