//! Integration: the dichotomy classifier reproduces every classification
//! claim the paper makes, and the classification pipeline is internally
//! consistent (witnesses validate, rules match complexity classes).

use cqa::{classify, Classification, ClassificationRule, Complexity, Confidence};
use cqa_query::{examples, parse_query};

fn check(q_str: &str, complexity: Complexity, rule: ClassificationRule) -> Classification {
    let q = parse_query(q_str).unwrap_or_else(|e| panic!("{q_str}: {e}"));
    let c = classify(&q);
    assert_eq!(c.complexity, complexity, "{q_str}");
    assert_eq!(c.rule, rule, "{q_str}");
    c
}

#[test]
fn q1_conp_by_thm42() {
    // Paper, Section 4: u, v shared but u ∉ key(B), v ∉ key(A); keys
    // incomparable; x ∈ key(A) \ vars(B).
    let c = check(
        "R(x u | x v) R(v y | u y)",
        Complexity::CoNpComplete,
        ClassificationRule::Theorem42,
    );
    assert_eq!(c.confidence, Confidence::Proved);
    assert!(c.fork_witness.is_none(), "Theorem 4.2 needs no tripath");
}

#[test]
fn q2_conp_by_fork_tripath() {
    // Paper, Sections 4 & 9: certain(sjf(q2)) is PTime yet certain(q2) is
    // coNP-hard — the fork-tripath route.
    let c = check(
        "R(x u | x y) R(u y | x z)",
        Complexity::CoNpComplete,
        ClassificationRule::Theorem91,
    );
    assert_eq!(c.confidence, Confidence::Proved);
    let fork = c.fork_witness.expect("fork witness attached");
    let (kind, _) = fork.validate(&examples::q2()).expect("witness validates");
    assert_eq!(kind, cqa::tripath::TripathKind::Fork);
}

#[test]
fn q3_q4_ptime_by_thm61() {
    check(
        "R(x | y) R(y | z)",
        Complexity::PTimeCert2,
        ClassificationRule::Theorem61,
    );
    check(
        "R(x x | u v) R(x y | u x)",
        Complexity::PTimeCert2,
        ClassificationRule::Theorem61,
    );
}

#[test]
fn q5_ptime_no_tripath() {
    // Paper, Section 8: any branching triple for q5 collapses two facts
    // into one block, so no tripath center exists.
    let c = check(
        "R(x | y x) R(y | x u)",
        Complexity::PTimeCertK,
        ClassificationRule::Theorem81,
    );
    assert_eq!(
        c.confidence,
        Confidence::Proved,
        "q5 has no center: proof, not evidence"
    );
}

#[test]
fn q6_ptime_triangle_only() {
    let c = check(
        "R(x | y z) R(z | x y)",
        Complexity::PTimeCombined,
        ClassificationRule::Theorem105,
    );
    let tri = c.triangle_witness.expect("triangle witness");
    let (kind, _) = tri.validate(&examples::q6()).expect("validates");
    assert_eq!(kind, cqa::tripath::TripathKind::Triangle);
}

#[test]
fn q7_exercise() {
    // The paper leaves q7 as an exercise: triangle-tripath, no fork.
    let c = classify(&examples::q7());
    assert_eq!(c.complexity, Complexity::PTimeCombined);
    assert!(c.triangle_witness.is_some());
    assert!(c.fork_witness.is_none());
}

#[test]
fn trivial_cases_from_section2() {
    for s in [
        "R(x | y) R(u | v)", // hom both ways (renaming)
        "R(x | x) R(u | v)", // hom A -> B
        "R(x | y) R(x | z)", // key(A) = key(B) as tuples
        "R(x y | z) R(x y | w)",
    ] {
        check(
            s,
            Complexity::Trivial,
            ClassificationRule::OneAtomEquivalent,
        );
    }
}

#[test]
fn rules_imply_complexities() {
    // The rule → complexity mapping is fixed by the theorems.
    for (_, q) in examples::all() {
        let c = classify(&q);
        let expected = match c.rule {
            ClassificationRule::OneAtomEquivalent => Complexity::Trivial,
            ClassificationRule::Theorem42 | ClassificationRule::Theorem91 => {
                Complexity::CoNpComplete
            }
            ClassificationRule::Theorem61 => Complexity::PTimeCert2,
            ClassificationRule::Theorem81 => Complexity::PTimeCertK,
            ClassificationRule::Theorem105 => Complexity::PTimeCombined,
        };
        assert_eq!(c.complexity, expected);
    }
}

#[test]
fn classification_is_swap_stable_on_structured_queries() {
    // q = AB and q' = BA have the same certain problem; the decision
    // procedure must agree on the complexity class.
    for (_, q) in examples::all() {
        let c1 = classify(&q);
        let c2 = classify(&q.swapped());
        assert_eq!(c1.complexity, c2.complexity, "{q}");
    }
}

#[test]
fn extra_structured_queries_classify_sanely() {
    // A few additional shapes, classified by the procedure and checked for
    // internal coherence (witness presence matches the rule).
    for s in [
        "R(x y | z) R(y z | x)",
        "R(x | u v) R(u | x w)",
        "R(x u | y) R(y u | x)",
        "R(x | x y) R(y | y x)",
    ] {
        let q = parse_query(s).unwrap();
        let c = classify(&q);
        match c.rule {
            ClassificationRule::Theorem91 => assert!(c.fork_witness.is_some(), "{s}"),
            ClassificationRule::Theorem105 => {
                assert!(
                    c.fork_witness.is_none() && c.triangle_witness.is_some(),
                    "{s}"
                )
            }
            ClassificationRule::Theorem81 => {
                assert!(
                    c.fork_witness.is_none() && c.triangle_witness.is_none(),
                    "{s}"
                )
            }
            _ => {}
        }
    }
}
