//! Fleet-level classifier and pipeline guarantees (wired into `cqa-cli`,
//! which hosts the fleet harness):
//!
//! * the checked-in classifier corpus (`tests/data/classifier_corpus.tsv`)
//!   replays with its pinned `Complexity`/`ClassificationRule`/`Confidence`
//!   verdicts — the paper's complexity table over ~50 generated queries
//!   plus the seven exemplars;
//! * the generated section of that corpus is byte-identical to what
//!   `cqa fleet --corpus` produces today (generator or classifier drift
//!   must be deliberate);
//! * `classify` is deterministic across repeated calls and across
//!   threads;
//! * a small fleet runs end to end with zero disagreements.

use cqa::{classify, Complexity, Confidence};
use cqa_cli::fleet::{corpus_table, run_fleet, FleetConfig};
use cqa_query::parse_query;
use cqa_workloads::{random_queries, QueryGenConfig};
use std::path::PathBuf;

/// Seed and size of the corpus's generated section (see the TSV header).
const CORPUS_SEED: u64 = 1;
const CORPUS_QUERIES: usize = 50;

fn corpus_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/data/classifier_corpus.tsv")
}

fn corpus_lines() -> Vec<(String, String, String, String)> {
    let text = std::fs::read_to_string(corpus_path())
        .unwrap_or_else(|e| panic!("{}: {e}", corpus_path().display()));
    text.lines()
        .filter(|l| !l.trim().is_empty() && !l.trim_start().starts_with('#'))
        .map(|l| {
            let cols: Vec<&str> = l.split('\t').collect();
            assert_eq!(cols.len(), 4, "bad corpus line: {l:?}");
            (
                cols[0].to_string(),
                cols[1].to_string(),
                cols[2].to_string(),
                cols[3].to_string(),
            )
        })
        .collect()
}

fn verdict(q: &cqa_query::Query) -> (String, String, String) {
    let c = classify(q);
    (
        format!("{:?}", c.complexity),
        format!("{:?}", c.rule),
        format!("{:?}", c.confidence),
    )
}

#[test]
fn corpus_replays_with_pinned_verdicts() {
    let lines = corpus_lines();
    assert!(lines.len() >= 50, "corpus shrank to {} lines", lines.len());
    for (text, complexity, rule, confidence) in &lines {
        let q = parse_query(text).unwrap_or_else(|e| panic!("{text}: {e}"));
        let (c, r, conf) = verdict(&q);
        assert_eq!(&c, complexity, "{text}: complexity drifted");
        assert_eq!(&r, rule, "{text}: rule drifted");
        assert_eq!(&conf, confidence, "{text}: confidence drifted");
    }
}

#[test]
fn corpus_covers_the_whole_complexity_table() {
    // Every complexity class and every classification rule appears: the
    // corpus is a table test for the dichotomy, not a grab bag.
    let lines = corpus_lines();
    for class in [
        "Trivial",
        "PTimeCert2",
        "PTimeCertK",
        "PTimeCombined",
        "CoNpComplete",
    ] {
        assert!(
            lines.iter().any(|(_, c, _, _)| c == class),
            "no {class} query in the corpus"
        );
    }
    for rule in [
        "OneAtomEquivalent",
        "Theorem42",
        "Theorem61",
        "Theorem81",
        "Theorem91",
        "Theorem105",
    ] {
        assert!(
            lines.iter().any(|(_, _, r, _)| r == rule),
            "no {rule} query in the corpus"
        );
    }
}

#[test]
fn corpus_generated_section_matches_the_generator() {
    let expected = corpus_table(CORPUS_SEED, CORPUS_QUERIES);
    let all = corpus_lines();
    let checked_in = &all[..CORPUS_QUERIES];
    // Compare line by line for readable failures.
    let expected_lines: Vec<&str> = expected.lines().collect();
    assert_eq!(expected_lines.len(), CORPUS_QUERIES);
    for (i, line) in expected_lines.iter().enumerate() {
        let got = &checked_in[i];
        let want = format!("{}\t{}\t{}\t{}", got.0, got.1, got.2, got.3);
        assert_eq!(
            line, &want,
            "corpus line {} drifted from `cqa fleet --corpus --queries {CORPUS_QUERIES} --seed {CORPUS_SEED}`",
            i + 1
        );
    }
}

#[test]
fn classify_is_deterministic_across_calls_and_threads() {
    let fleet = random_queries(77, 40, &QueryGenConfig::default());
    let baseline: Vec<_> = fleet.iter().map(|g| verdict(&g.query)).collect();
    // Repeated calls.
    for (g, base) in fleet.iter().zip(&baseline) {
        assert_eq!(&verdict(&g.query), base, "{}", g.text);
    }
    // Concurrent calls: four threads classify the whole fleet each.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| fleet.iter().map(|g| verdict(&g.query)).collect::<Vec<_>>()))
            .collect();
        for handle in handles {
            assert_eq!(handle.join().expect("classifier thread"), baseline);
        }
    });
}

#[test]
fn small_fleet_has_no_disagreements() {
    let summary = run_fleet(&FleetConfig {
        queries: 25,
        dbs: 2,
        seed: 5,
        max_facts: 24,
    })
    .unwrap_or_else(|d| panic!("{d}"));
    assert!(summary.contains("pairs checked:   50"), "{summary}");
    assert!(summary.contains("disagreements:   0"), "{summary}");
}

#[test]
fn exemplars_keep_their_paper_verdicts() {
    // The same table classifier_matches_paper.rs pins, but through the
    // corpus machinery: q1..q7 all sit in the exemplars section.
    let lines = corpus_lines();
    for (name, q) in cqa_query::examples::all() {
        let shown = q.display();
        assert!(
            lines.iter().any(|(text, _, _, _)| text == &shown),
            "{name} ({shown}) missing from the corpus exemplar section"
        );
    }
    // And the two confidence levels both occur (q7's triangle verdict is
    // bounded-evidence: its tripath search hits the default budget).
    assert!(lines.iter().any(|(_, _, _, c)| c == "Proved"));
    assert!(lines.iter().any(|(_, _, _, c)| c == "BoundedEvidence"));
    let q7 = cqa_query::examples::q7();
    let c = classify(&q7);
    assert_eq!(c.complexity, Complexity::PTimeCombined);
    assert_eq!(c.confidence, Confidence::BoundedEvidence);
}
