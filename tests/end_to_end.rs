//! Integration: property-based end-to-end checks with proptest — repair
//! axioms, solution symmetry, the Lemma 6.2 zig-zag property, Lemma 7.1,
//! and engine consistency on generated databases.

use cqa::solvers::{certain_brute, SolutionSet};
use cqa::CqaEngine;
use cqa_model::{Database, Elem, Fact, RepairIter};
use cqa_query::{examples, is_solution, Query};
use proptest::prelude::*;

/// Strategy: a database for `q`'s signature over a tiny named domain.
fn db_strategy(q: &Query, max_facts: usize) -> impl Strategy<Value = Database> {
    let sig = *q.signature();
    let arity = sig.arity();
    let fact = proptest::collection::vec(0u8..4, arity);
    let q = q.clone();
    proptest::collection::vec(fact, 1..=max_facts).prop_map(move |rows| {
        let mut db = Database::new(*q.signature());
        for row in rows {
            let tuple: Vec<Elem> = row
                .into_iter()
                .map(|v| Elem::pair(Elem::named("pt"), Elem::int(v as i64)))
                .collect();
            db.insert(Fact::r(tuple)).expect("arity matches");
        }
        db
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn repairs_are_maximal_consistent_subsets(db in db_strategy(&examples::q3(), 6)) {
        let mut count = 0u128;
        for r in RepairIter::new(&db) {
            count += 1;
            // One fact per block, the fact belongs to its block.
            prop_assert_eq!(r.len(), db.block_count());
            for b in db.block_ids() {
                prop_assert_eq!(db.block_of(r.chosen(b)), b);
            }
        }
        prop_assert_eq!(count, db.repair_count());
    }

    #[test]
    fn solution_set_matches_definition(db in db_strategy(&examples::q2(), 6)) {
        let q = examples::q2();
        let sols = SolutionSet::enumerate(&q, &db);
        for (ia, fa) in db.facts() {
            for (ib, fb) in db.facts() {
                prop_assert_eq!(sols.holds(ia, ib), is_solution(&q, fa, fb));
            }
        }
    }

    #[test]
    fn zigzag_property_holds_for_thm61_queries(db in db_strategy(&examples::q3(), 6)) {
        // Lemma 6.2: if q(a b), q(c b′), b ∼ b′, a ≁ c, a ≠ b then q(a b′).
        let q = examples::q3();
        prop_assert!(cqa_query::conditions::zigzag_premise(&q));
        let sols = SolutionSet::enumerate(&q, &db);
        for &(a, b) in sols.pairs() {
            if a == b {
                continue;
            }
            for &(c, b2) in sols.pairs() {
                if db.key_equal(b, b2) && !db.key_equal(a, c) {
                    prop_assert!(
                        sols.holds(a, b2),
                        "zig-zag violated: q({a:?} {b:?}), q({c:?} {b2:?}) but not q({a:?} {b2:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn lemma71_partner_uniqueness_for_2way_determined(db in db_strategy(&examples::q6(), 6)) {
        // Lemma 7.1: q(a b) ∧ q(a c) ⇒ b ∼ c; q(a b) ∧ q(c b) ⇒ a ∼ c.
        let q = examples::q6();
        let sols = SolutionSet::enumerate(&q, &db);
        for &(a, b) in sols.pairs() {
            for &c in sols.seconds_of(a) {
                prop_assert!(db.key_equal(b, c), "second partners must be key-equal");
            }
            for &c in sols.firsts_of(b) {
                prop_assert!(db.key_equal(a, c), "first partners must be key-equal");
            }
        }
    }

    #[test]
    fn engine_answers_match_brute_force_q6(db in db_strategy(&examples::q6(), 6)) {
        let engine = CqaEngine::new(examples::q6());
        let ans = engine.certain(&db);
        prop_assert!(!ans.budget_exhausted);
        prop_assert_eq!(ans.certain, certain_brute(&examples::q6(), &db));
    }

    #[test]
    fn engine_answers_match_brute_force_q4(db in db_strategy(&examples::q4(), 6)) {
        let engine = CqaEngine::new(examples::q4());
        let ans = engine.certain(&db);
        prop_assert!(!ans.budget_exhausted);
        prop_assert_eq!(ans.certain, certain_brute(&examples::q4(), &db));
    }

    #[test]
    fn certain_is_monotone_under_block_removal(db in db_strategy(&examples::q3(), 6)) {
        // Removing a whole block can only *preserve or lose* certainty when
        // the block was not the satisfied component... in general no
        // monotonicity holds; what DOES hold: adding a fact to an existing
        // block can only falsify (more repairs), never certify.
        let q = examples::q3();
        let before = certain_brute(&q, &db);
        if db.is_empty() {
            return Ok(());
        }
        // Add a dead-end fact to the first block.
        let first_key = db.fact(cqa_model::FactId(0)).key(q.signature()).to_vec();
        let mut bigger = db.clone();
        let mut tuple = first_key;
        tuple.push(Elem::fresh());
        bigger.insert(Fact::r(tuple)).unwrap();
        let after = certain_brute(&q, &bigger);
        prop_assert!(!after || before, "adding a block alternative must not create certainty");
    }

    #[test]
    fn consistent_databases_decide_by_single_repair(db in db_strategy(&examples::q2(), 5)) {
        // On a consistent database, certain(q) is just query evaluation.
        let q = examples::q2();
        let consistent = db.restrict(
            db.block_ids().map(|b| db.block(b)[0]),
        );
        let sols = SolutionSet::enumerate(&q, &consistent);
        prop_assert_eq!(certain_brute(&q, &consistent), !sols.is_empty());
    }
}

#[test]
fn full_pipeline_on_all_paper_queries() {
    // classify → engine → answer on a fixed small database each; no panics,
    // budget respected, PTime answers equal brute force.
    use cqa_workloads::{random_db, RandomDbConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(2024);
    for (name, q) in examples::all() {
        let engine = CqaEngine::new(q.clone());
        let db = random_db(
            &mut rng,
            &q,
            &RandomDbConfig {
                blocks: 4,
                max_block_size: 2,
                domain: 3,
            },
        );
        let ans = engine.certain(&db);
        if engine.classification().complexity.is_ptime() {
            assert_eq!(ans.certain, certain_brute(&q, &db), "{name}");
        } else {
            // coNP queries answer by (budgeted) brute force: equal by
            // construction here since the budget is effectively unbounded.
            assert_eq!(ans.certain, certain_brute(&q, &db), "{name}");
        }
    }
}
