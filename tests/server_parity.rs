//! Differential suite: `cqa serve` answers are **byte-identical** to the
//! single-shot CLI, under concurrency, at 1 worker thread and at the
//! default pool width, and across forced mid-run LRU evictions.
//!
//! The reference side is the in-process CLI (`cmd_batch`, `cmd_certain`,
//! `cmd_falsify`); the candidate side talks to a real TCP server through
//! `cmd_client`, several clients at once. Any drift — verdicts, falsify
//! witness rendering, even batch error text — fails the diff.

use cqa_cli::server_cli::cmd_client;
use cqa_cli::{cmd_batch, cmd_certain, cmd_falsify, dbfmt, load_db_file};
use cqa_query::examples;
use cqa_server::{serve, Loader, ManagerStats, ServeConfig, ServerHandle};
use cqa_workloads::skew::SkewFamily;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Bounded falsify budget so brute force stays fast on every family;
/// both sides use the same number, so outcomes (including
/// budget-exhausted) stay comparable.
const FALSIFY_BUDGET: u64 = 200_000;

const QUERIES_TEXT: &str = "# mixed parity batch\n\
R(x | y) R(y | z)\n\
R(x | y) R(x | z)\n\
\n\
R(y | x) R(x | x)\n\
R(x | y) R(y | z)\n\
R(y | x) R(x | y)\n";

const CERTAIN_QUERIES: [&str; 3] = [
    "R(x | y) R(y | z)",
    "R(x | y) R(x | z)",
    "R(y | x) R(x | x)",
];

/// A scratch directory holding the three skewed parity databases.
struct Fixture {
    dir: PathBuf,
    dbs: Vec<String>,
    queries_file: String,
}

impl Fixture {
    fn new() -> Fixture {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqa-server-parity-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let q3 = examples::q3();
        // Three families, three sizes: enough variety to exercise the
        // session manager, small enough for debug-build brute force.
        let shapes = [
            (SkewFamily::Uniform, 60usize, 11u64),
            (SkewFamily::MixedBatch, 120, 12),
            (SkewFamily::HeavyHitter, 48, 13),
        ];
        let mut dbs = Vec::new();
        for (family, facts, seed) in shapes {
            let db = cqa_workloads::skew::skewed_db(seed, &q3, &family.config(facts));
            let path = dir.join(format!("{}.facts", family.name()));
            std::fs::write(&path, dbfmt::write_database(&db)).unwrap();
            dbs.push(path.display().to_string());
        }
        let queries_file = dir.join("queries.txt").display().to_string();
        std::fs::write(&queries_file, QUERIES_TEXT).unwrap();
        Fixture {
            dir,
            dbs,
            queries_file,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn cli_loader() -> Loader {
    Arc::new(|path: &str| load_db_file(path).map_err(|e| e.message))
}

fn start_server(pool_threads: usize, memory_budget: Option<usize>) -> ServerHandle {
    let mut config = ServeConfig::new(cli_loader());
    config.addr = "127.0.0.1:0".to_string();
    config.threads = pool_threads;
    config.memory_budget = memory_budget;
    // One solver thread per request, like `cqa serve`: concurrency comes
    // from the pool, and verdicts are thread-count independent anyway.
    config.engine = cqa::EngineConfig::default().with_threads(1);
    serve(config).expect("bind parity server")
}

/// The single-shot CLI's answers for one database: the exact bytes the
/// server-side clients must reproduce.
struct Expected {
    batch_stdout: String,
    certain_lines: Vec<String>,
    falsify_stdout: String,
}

fn expected_for(db_path: &str) -> Expected {
    let db = load_db_file(db_path).unwrap();
    let batch_stdout = cmd_batch(&db, QUERIES_TEXT, Some(1), None, false, false)
        .unwrap()
        .stdout;
    let certain_lines = CERTAIN_QUERIES
        .iter()
        .map(|q| {
            let out = cmd_certain(q, &db, Some(1), None, false, false)
                .unwrap()
                .stdout;
            out.lines()
                .find(|l| l.starts_with("certain:"))
                .expect("cmd_certain prints a certain: line")
                .to_string()
        })
        .collect();
    let falsify_stdout = cmd_falsify(CERTAIN_QUERIES[0], &db, FALSIFY_BUDGET, Some(1), false)
        .unwrap()
        .stdout;
    Expected {
        batch_stdout,
        certain_lines,
        falsify_stdout,
    }
}

/// One client's work item: run every request kind against one database
/// through a fresh `cqa client` connection and diff against the CLI.
fn run_client_schedule(addr: &str, db_path: &str, expected: &Expected, queries_file: &str) {
    let batch = cmd_client(&[addr, "batch", db_path, queries_file]).unwrap();
    assert_eq!(
        batch.stdout, expected.batch_stdout,
        "batch verdicts drifted for {db_path}"
    );
    for (q, want) in CERTAIN_QUERIES.iter().zip(&expected.certain_lines) {
        let got = cmd_client(&[addr, "certain", db_path, q]).unwrap();
        assert_eq!(
            got.stdout.trim_end(),
            want.as_str(),
            "certain drifted: {q} on {db_path}"
        );
    }
    let falsify = cmd_client(&[
        addr,
        "falsify",
        db_path,
        CERTAIN_QUERIES[0],
        &FALSIFY_BUDGET.to_string(),
    ])
    .unwrap();
    assert_eq!(
        falsify.stdout, expected.falsify_stdout,
        "falsify rendering drifted for {db_path}"
    );
}

/// The full differential: N concurrent clients × all databases × mixed
/// request kinds, each client rotating databases in a different order
/// (when a memory budget is set, this churns the LRU mid-run).
fn parity_run(pool_threads: usize, memory_budget: Option<usize>) -> ManagerStats {
    let fixture = Fixture::new();
    let expected: Vec<Expected> = fixture.dbs.iter().map(|p| expected_for(p)).collect();
    let server = start_server(pool_threads, memory_budget);
    let addr = server.addr().to_string();
    let expected = Arc::new(expected);
    let dbs = Arc::new(fixture.dbs.clone());
    let queries_file = fixture.queries_file.clone();
    let clients: Vec<_> = (0..6)
        .map(|c| {
            let addr = addr.clone();
            let expected = Arc::clone(&expected);
            let dbs = Arc::clone(&dbs);
            let queries_file = queries_file.clone();
            std::thread::spawn(move || {
                for round in 0..2 {
                    for step in 0..dbs.len() {
                        // Distinct rotations per client: client 0 walks
                        // 0,1,2, client 1 walks 1,2,0, ... so the LRU
                        // ordering keeps changing under concurrency.
                        let i = (c + step + round) % dbs.len();
                        run_client_schedule(&addr, &dbs[i], &expected[i], &queries_file);
                    }
                }
            })
        })
        .collect();
    for client in clients {
        client.join().expect("parity client panicked");
    }
    server.manager_stats()
}

#[test]
fn server_matches_cli_with_one_worker_thread() {
    let stats = parity_run(1, None);
    assert_eq!(stats.evictions, 0, "no budget, no evictions");
    assert_eq!(stats.sessions, 3, "all three databases stay resident");
    assert!(stats.cache_hits > 0, "repeat queries must hit the cache");
}

#[test]
fn server_matches_cli_with_default_pool() {
    let stats = parity_run(0, None);
    assert_eq!(stats.evictions, 0);
    assert_eq!(stats.sessions, 3);
}

#[test]
fn server_matches_cli_across_forced_evictions() {
    // Budget fits the largest database plus a sliver: at most two
    // resident at any time, so the 6 clients × 3 databases rotation
    // forces reload-after-evict over and over — verdicts must not care.
    let fixture = Fixture::new();
    let sizes: Vec<usize> = fixture
        .dbs
        .iter()
        .map(|p| load_db_file(p).unwrap().approx_bytes())
        .collect();
    drop(fixture);
    let budget = sizes.iter().copied().max().unwrap() + sizes.iter().copied().min().unwrap() / 2;
    let stats = parity_run(2, Some(budget));
    assert!(
        stats.evictions >= 1,
        "tight budget must evict mid-run (got {stats:?})"
    );
    assert!(
        stats.loads > 3,
        "evicted databases must have been reloaded (got {stats:?})"
    );
    assert!(stats.resident_bytes <= budget, "{stats:?} over {budget}");
}

/// Overload + retry differential: a one-worker, zero-queue server sheds
/// a storm of clients with `overloaded`, and `--retries` backoff must
/// carry every one of them to the exact CLI verdict — shedding may
/// delay an answer, never change it.
#[test]
fn shed_clients_eventually_succeed_via_retries_with_zero_divergence() {
    let fixture = Fixture::new();
    let expected = expected_for(&fixture.dbs[0]);
    let want = expected.certain_lines[0].clone();
    // "slow@<path>" naps before loading, so one request can pin the
    // single worker while the storm arrives.
    let loader: Loader = Arc::new(|path: &str| {
        let path = if let Some(rest) = path.strip_prefix("slow@") {
            std::thread::sleep(std::time::Duration::from_millis(700));
            rest
        } else {
            path
        };
        load_db_file(path).map_err(|e| e.message)
    });
    let mut config = ServeConfig::new(loader);
    config.addr = "127.0.0.1:0".to_string();
    config.threads = 1;
    config.max_queue = Some(0); // one in flight, zero waiting
    config.engine = cqa::EngineConfig::default().with_threads(1);
    let server = serve(config).expect("bind overload server");
    let addr = server.addr().to_string();
    let db0 = fixture.dbs[0].clone();

    let occupant = {
        let (addr, db0, want) = (addr.clone(), db0.clone(), want.clone());
        std::thread::spawn(move || {
            let got = cmd_client(&[&addr, "certain", &format!("slow@{db0}"), CERTAIN_QUERIES[0]])
                .unwrap();
            assert_eq!(got.stdout.trim_end(), want, "occupant verdict drifted");
        })
    };
    // Give the occupant time to reach the worker before the storm.
    std::thread::sleep(std::time::Duration::from_millis(200));
    let storm: Vec<_> = (0..5)
        .map(|c| {
            let (addr, db0, want) = (addr.clone(), db0.clone(), want.clone());
            std::thread::spawn(move || {
                let got = cmd_client(&[
                    "--retries",
                    "10",
                    "--retry-seed",
                    &c.to_string(),
                    &addr,
                    "certain",
                    &db0,
                    CERTAIN_QUERIES[0],
                ])
                .unwrap_or_else(|e| panic!("storm client {c} never landed: {}", e.message));
                assert_eq!(
                    got.stdout.trim_end(),
                    want,
                    "storm client {c} verdict drifted"
                );
            })
        })
        .collect();
    for client in storm {
        client.join().expect("storm client panicked");
    }
    occupant.join().expect("occupant panicked");
    let stats = server.manager_stats();
    assert!(
        stats.shed >= 1,
        "a zero-queue server under a 5-client storm must shed (got {stats:?})"
    );
    assert_eq!(stats.cancelled, 0, "no deadlines were set: {stats:?}");
}

/// Live updates under concurrency: a deterministic chain of delta
/// scripts is applied over the wire while several clients keep querying,
/// with barriers separating the epochs. Every epoch's answers — from
/// every client — must be byte-identical to a single-threaded replay
/// that applies the same deltas to an in-memory database and runs the
/// plain CLI. This is the serve-side acceptance gate of the incremental
/// path: warm-restarted sessions may never drift from recomputation,
/// and an update must never tear (queries see exactly the pre- or
/// post-update database, nothing in between — epochs pin which).
#[test]
fn updates_interleaved_with_queries_match_single_threaded_replay() {
    let fixture = Fixture::new();
    let db_path = fixture.dbs[0].clone();

    // Single-threaded replay: evolve an in-memory copy through three
    // seeded delta scripts, recording the CLI's answers per epoch.
    let mut replay = load_db_file(&db_path).unwrap();
    let key_len = replay.signature().key_len();
    let mut script_files: Vec<String> = Vec::new();
    let mut epoch_expected: Vec<Expected> = vec![expected_for(&db_path)];
    for (i, (seed, insert_ratio, locality)) in [
        (401u64, 0.6, cqa_workloads::DeltaLocality::SameBlock),
        (402, 0.6, cqa_workloads::DeltaLocality::Mixed),
        // Pure growth: the epoch that exercises the warm-restart fast
        // path (blocks_reseeded) rather than cold component re-solves.
        (403, 1.0, cqa_workloads::DeltaLocality::CrossComponent),
    ]
    .into_iter()
    .enumerate()
    {
        let cfg = cqa_workloads::DeltaScriptConfig {
            ops: 10,
            insert_ratio,
            locality,
            domain: 5,
        };
        let ops = cqa_workloads::random_delta_ops(seed, &replay, &cfg);
        let text = cqa_workloads::render_delta_script(&ops, key_len);
        let path = fixture.dir.join(format!("delta-{i}.txt"));
        std::fs::write(&path, &text).unwrap();
        script_files.push(path.display().to_string());
        let (inserts, retracts) = cqa_workloads::split_delta_ops(&ops);
        let report = replay.apply_delta(&inserts, &retracts).unwrap();
        assert!(!report.is_noop(), "epoch {i} delta must change the db");
        // The CLI reference answers come from the evolved in-memory
        // database, written out so expected_for can reload it.
        let state_path = fixture.dir.join(format!("state-{i}.facts"));
        std::fs::write(&state_path, dbfmt::write_database(&replay)).unwrap();
        epoch_expected.push(expected_for(&state_path.display().to_string()));
    }

    let server = start_server(0, None);
    let addr = server.addr().to_string();
    let epochs = script_files.len();
    let clients = 4usize;
    let barrier = Arc::new(std::sync::Barrier::new(clients));
    let epoch_expected = Arc::new(epoch_expected);
    let script_files = Arc::new(script_files);
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let db_path = db_path.clone();
            let queries_file = fixture.queries_file.clone();
            let barrier = Arc::clone(&barrier);
            let epoch_expected = Arc::clone(&epoch_expected);
            let script_files = Arc::clone(&script_files);
            std::thread::spawn(move || {
                for epoch in 0..=epochs {
                    // Everyone queries the settled epoch concurrently.
                    barrier.wait();
                    run_client_schedule(&addr, &db_path, &epoch_expected[epoch], &queries_file);
                    barrier.wait();
                    // One client advances the epoch over the wire; the
                    // barrier pair means no query is in flight across
                    // the swap, so each epoch's parity is exact.
                    if epoch < epochs && c == epoch % clients {
                        let out =
                            cmd_client(&[&addr, "update", &db_path, &script_files[epoch]]).unwrap();
                        assert!(
                            out.stdout.starts_with(&format!("updated {db_path}:")),
                            "unexpected update output: {}",
                            out.stdout
                        );
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("update parity client panicked");
    }
    let stats = server.manager_stats();
    assert_eq!(stats.delta_applied, epochs as u64, "{stats:?}");
    assert_eq!(
        stats.loads, 1,
        "updates must patch, never reload: {stats:?}"
    );
    assert!(stats.blocks_reseeded > 0, "{stats:?}");
}

/// Concurrent identical updates are set-semantic: when every client
/// races to apply the *same* delta script (the wire-retry shape), all of
/// them succeed, the delta lands exactly once per application with no
/// double effects, and the final answers equal the single replay.
#[test]
fn racing_identical_updates_stay_idempotent() {
    let fixture = Fixture::new();
    let db_path = fixture.dbs[2].clone();
    let mut replay = load_db_file(&db_path).unwrap();
    let key_len = replay.signature().key_len();
    let cfg = cqa_workloads::DeltaScriptConfig {
        ops: 8,
        insert_ratio: 0.5,
        locality: cqa_workloads::DeltaLocality::Mixed,
        domain: 4,
    };
    let ops = cqa_workloads::random_delta_ops(77, &replay, &cfg);
    let script_file = fixture.dir.join("race-delta.txt");
    std::fs::write(
        &script_file,
        cqa_workloads::render_delta_script(&ops, key_len),
    )
    .unwrap();
    let (inserts, retracts) = cqa_workloads::split_delta_ops(&ops);
    replay.apply_delta(&inserts, &retracts).unwrap();
    let state_path = fixture.dir.join("race-state.facts");
    std::fs::write(&state_path, dbfmt::write_database(&replay)).unwrap();
    let expected = expected_for(&state_path.display().to_string());
    let final_facts = replay.len();

    let server = start_server(0, None);
    let addr = server.addr().to_string();
    let script = script_file.display().to_string();
    let handles: Vec<_> = (0..5)
        .map(|_| {
            let (addr, db_path, script) = (addr.clone(), db_path.clone(), script.clone());
            std::thread::spawn(move || {
                let out = cmd_client(&[&addr, "update", &db_path, &script]).unwrap();
                // Whoever lands after the first application sees a pure
                // no-op — never an error, never a double effect.
                assert!(
                    out.stdout.contains(&format!("facts={final_facts}")),
                    "post-update fact count drifted: {}",
                    out.stdout
                );
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("racing update client panicked");
    }
    run_client_schedule(&addr, &db_path, &expected, &fixture.queries_file);
    let stats = server.manager_stats();
    assert_eq!(
        stats.delta_applied, 5,
        "every race entrant applied: {stats:?}"
    );
    assert_eq!(stats.loads, 1, "{stats:?}");
}

#[test]
fn batch_error_text_matches_the_cli_byte_for_byte() {
    // The positioned error for a malformed batch line must be the same
    // string whether it came from `cqa batch` or over the wire.
    let fixture = Fixture::new();
    let bad = "R(x | y) R(y | z)\nR(x x | y) R(y | z)\n";
    let db = load_db_file(&fixture.dbs[0]).unwrap();
    let cli_err = cmd_batch(&db, bad, Some(1), None, false, false).unwrap_err();
    let server = start_server(1, None);
    let addr = server.addr().to_string();
    let bad_file = fixture.dir.join("bad.txt");
    std::fs::write(&bad_file, bad).unwrap();
    let client_err = cmd_client(&[
        &addr,
        "batch",
        &fixture.dbs[0],
        &bad_file.display().to_string(),
    ])
    .unwrap_err();
    // `cqa client` wraps the wire error as
    // "<file>: server error (bad-batch): <message>"; the message half
    // must equal the CLI text exactly.
    let marker = "server error (bad-batch): ";
    let at = client_err
        .message
        .find(marker)
        .unwrap_or_else(|| panic!("unexpected client error shape: {}", client_err.message));
    assert_eq!(
        &client_err.message[at + marker.len()..],
        cli_err.message,
        "batch error text drifted between the CLI and the wire"
    );
}
