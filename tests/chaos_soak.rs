//! Chaos soak: clients hammer a real `cqa serve` instance **through**
//! the seeded fault-injection proxy ([`cqa_server::chaos`]) while it
//! delays, splits, drops and resets their traffic, and the suite pins
//! the three overload-hardening guarantees:
//!
//! 1. the server never wedges — every round completes inside the
//!    harness budget and the server still answers directly afterwards;
//! 2. every completed verdict is byte-identical to the single-shot CLI
//!    (faults may kill delivery, never flip an answer);
//! 3. every failure a client observes is a stable coded error or a
//!    clean reconnect — nothing escapes the error-code table.
//!
//! Runs a quick seeded pass by default; CI's chaos smoke stretches the
//! same test with `CQA_CHAOS_ROUNDS`.

use cqa_cli::{cmd_batch, dbfmt, load_db_file};
use cqa_query::examples;
use cqa_server::protocol::KNOWN_CODES;
use cqa_server::{chaos_proxy, serve, ChaosPlan, Client, Loader, RetryPolicy, ServeConfig};
use cqa_workloads::skew::SkewFamily;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const QUERIES_TEXT: &str = "R(x | y) R(y | z)\n\
R(x | y) R(x | z)\n\
R(y | x) R(x | x)\n\
R(y | x) R(x | y)\n";

/// One scratch database (skewed, partly contested) plus the CLI's
/// reference verdicts for it.
struct Fixture {
    dir: PathBuf,
    db_path: String,
    expected: Vec<bool>,
}

impl Fixture {
    fn new() -> Fixture {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqa-chaos-soak-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let q3 = examples::q3();
        let db = cqa_workloads::skew::skewed_db(21, &q3, &SkewFamily::MixedBatch.config(90));
        let db_path = dir.join("soak.facts").display().to_string();
        std::fs::write(&db_path, dbfmt::write_database(&db)).unwrap();
        let reference = cmd_batch(&db, QUERIES_TEXT, Some(1), None, false, false)
            .unwrap()
            .stdout;
        let expected = reference
            .lines()
            .map(|l| match l {
                "true" => true,
                "false" => false,
                other => panic!("unexpected batch line {other:?}"),
            })
            .collect();
        Fixture {
            dir,
            db_path,
            expected,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn cli_loader() -> Loader {
    Arc::new(|path: &str| load_db_file(path).map_err(|e| e.message))
}

#[test]
fn seeded_chaos_soak_never_wedges_and_verdicts_stay_byte_identical() {
    let rounds: usize = std::env::var("CQA_CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    let fixture = Fixture::new();

    let mut config = ServeConfig::new(cli_loader());
    config.addr = "127.0.0.1:0".to_string();
    config.threads = 2;
    config.engine = cqa::EngineConfig::default().with_threads(1);
    let server = serve(config).expect("bind soak server");
    let server_addr = server.addr();

    let proxy = chaos_proxy(server_addr, ChaosPlan::rough(0xC0A)).expect("bind chaos proxy");
    let proxy_addr = proxy.addr();

    let expected = Arc::new(fixture.expected.clone());
    let db_path = Arc::new(fixture.db_path.clone());
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let expected = Arc::clone(&expected);
            let db_path = Arc::clone(&db_path);
            std::thread::spawn(move || {
                let mut coded_failures = 0usize;
                let mut reconnects = 0usize;
                let mut verdicts_checked = 0usize;
                let mut client = Client::connect(proxy_addr).expect("dial proxy");
                client.retry = Some(RetryPolicy {
                    retries: 12,
                    seed: 1000 + c as u64,
                    base_ms: 5,
                    cap_ms: 100,
                });
                for round in 0..rounds {
                    // Alternate request shapes so both short (certain)
                    // and long (batch) frames cross the mangled wire.
                    let outcome = if round % 2 == 0 {
                        client.batch(&db_path, QUERIES_TEXT).map(|verdicts| {
                            assert_eq!(
                                verdicts, *expected,
                                "client {c} round {round}: batch verdicts diverged"
                            );
                            verdicts.len()
                        })
                    } else {
                        client.certain(&db_path, "R(x | y) R(y | z)").map(|v| {
                            assert_eq!(
                                v, expected[0],
                                "client {c} round {round}: certain verdict diverged"
                            );
                            1
                        })
                    };
                    match outcome {
                        Ok(n) => verdicts_checked += n,
                        Err(e) => {
                            // Guarantee 3: nothing outside the table.
                            assert!(
                                KNOWN_CODES.contains(&e.code),
                                "client {c} round {round}: unknown error code {:?} ({})",
                                e.code,
                                e.message
                            );
                            coded_failures += 1;
                            if e.code == "io" {
                                client.reconnect().expect("reconnect after transport loss");
                                reconnects += 1;
                            }
                        }
                    }
                }
                (coded_failures, reconnects, verdicts_checked)
            })
        })
        .collect();

    let mut verdicts_checked = 0usize;
    for client in clients {
        let (_, _, checked) = client.join().expect("soak client panicked");
        verdicts_checked += checked;
    }
    assert!(
        verdicts_checked > 0,
        "the soak must complete some verdicts, not fail every round"
    );

    // Guarantee 1: the server itself survived the abuse — a *direct*
    // connection (no proxy) still answers, with parity intact.
    let tally = proxy.stop();
    let mut direct = Client::connect(server_addr).expect("server must still accept");
    direct.ping().expect("server must still answer ping");
    let verdicts = direct
        .batch(&fixture.db_path, QUERIES_TEXT)
        .expect("direct batch after the storm");
    assert_eq!(verdicts, fixture.expected, "post-soak verdicts diverged");
    direct.shutdown().expect("clean shutdown after the storm");
    let stats = server.wait();
    assert_eq!(stats.cancelled, 0, "no deadlines were set: {stats:?}");

    // The storm must have actually stormed, in every way the plan
    // allows — otherwise this test proves nothing.
    assert!(tally.connections >= 3, "{tally:?}");
    assert!(tally.delays > 0, "delay die never fired: {tally:?}");
    assert!(tally.splits > 0, "split die never fired: {tally:?}");
    assert!(
        tally.drops + tally.resets > 0,
        "no connection-loss fault fired: {tally:?}"
    );
}
