//! Chaos soak: clients hammer a real `cqa serve` instance **through**
//! the seeded fault-injection proxy ([`cqa_server::chaos`]) while it
//! delays, splits, drops and resets their traffic, and the suite pins
//! the three overload-hardening guarantees:
//!
//! 1. the server never wedges — every round completes inside the
//!    harness budget and the server still answers directly afterwards;
//! 2. every completed verdict is byte-identical to the single-shot CLI
//!    (faults may kill delivery, never flip an answer);
//! 3. every failure a client observes is a stable coded error or a
//!    clean reconnect — nothing escapes the error-code table.
//!
//! Runs a quick seeded pass by default; CI's chaos smoke stretches the
//! same test with `CQA_CHAOS_ROUNDS`.

use cqa_cli::{cmd_batch, dbfmt, load_db_file};
use cqa_query::examples;
use cqa_server::protocol::KNOWN_CODES;
use cqa_server::{chaos_proxy, serve, ChaosPlan, Client, Loader, RetryPolicy, ServeConfig};
use cqa_workloads::skew::SkewFamily;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const QUERIES_TEXT: &str = "R(x | y) R(y | z)\n\
R(x | y) R(x | z)\n\
R(y | x) R(x | x)\n\
R(y | x) R(x | y)\n";

/// One scratch database (skewed, partly contested) plus the CLI's
/// reference verdicts for it.
struct Fixture {
    dir: PathBuf,
    db_path: String,
    expected: Vec<bool>,
}

impl Fixture {
    fn new() -> Fixture {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cqa-chaos-soak-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::SeqCst)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let q3 = examples::q3();
        let db = cqa_workloads::skew::skewed_db(21, &q3, &SkewFamily::MixedBatch.config(90));
        let db_path = dir.join("soak.facts").display().to_string();
        std::fs::write(&db_path, dbfmt::write_database(&db)).unwrap();
        let reference = cmd_batch(&db, QUERIES_TEXT, Some(1), None, false, false)
            .unwrap()
            .stdout;
        let expected = reference
            .lines()
            .map(|l| match l {
                "true" => true,
                "false" => false,
                other => panic!("unexpected batch line {other:?}"),
            })
            .collect();
        Fixture {
            dir,
            db_path,
            expected,
        }
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn cli_loader() -> Loader {
    Arc::new(|path: &str| load_db_file(path).map_err(|e| e.message))
}

/// Torn-update soak: clients race the *same* idempotent delta script
/// through the chaos proxy (which drops, splits and resets mid-frame)
/// while others keep querying. The invariant: **no half-applied
/// session.** Every completed batch answers exactly like the pre-delta
/// database or exactly like the post-delta database — never a mixture —
/// and once any update has succeeded, the session is post-delta for
/// good. A connection killed mid-update may lose the *reply*, never
/// tear the *application*: the swap is atomic under the manager lock.
#[test]
fn torn_updates_never_yield_a_half_applied_session() {
    let rounds: usize = std::env::var("CQA_CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12);
    let fixture = Fixture::new();

    // One mixed delta (an insert *and* a retract: the shape where a torn
    // half-application would answer differently than the whole delta).
    // The inserted fresh self-loop fact forms a singleton block, so
    // `R(y | x) R(x | x)` becomes certain in every repair — a guaranteed
    // verdict flip, making tearing *visible* to the invariant below.
    let pre_expected = fixture.expected.clone();
    let mut replay = load_db_file(&fixture.db_path).unwrap();
    let first_resident = replay.facts().next().map(|(_, f)| f.clone()).unwrap();
    let ops = vec![
        cqa_workloads::DeltaOp::Retract(first_resident),
        cqa_workloads::DeltaOp::Insert(cqa_model::Fact::from_names(["selfloop", "selfloop"])),
    ];
    let deltas_text = cqa_workloads::render_delta_script(&ops, replay.signature().key_len());
    let (inserts, retracts) = cqa_workloads::split_delta_ops(&ops);
    let report = replay.apply_delta(&inserts, &retracts).unwrap();
    assert!(!report.is_noop() && !report.growth_only());
    let post_expected: Vec<bool> = cmd_batch(&replay, QUERIES_TEXT, Some(1), None, false, false)
        .unwrap()
        .stdout
        .lines()
        .map(|l| l == "true")
        .collect();
    assert_ne!(
        pre_expected, post_expected,
        "the soak delta must flip at least one verdict, or tearing is invisible"
    );

    let mut config = ServeConfig::new(cli_loader());
    config.addr = "127.0.0.1:0".to_string();
    config.threads = 2;
    config.engine = cqa::EngineConfig::default().with_threads(1);
    let server = serve(config).expect("bind torn-update server");
    let server_addr = server.addr();
    let proxy = chaos_proxy(server_addr, ChaosPlan::rough(0x7EA2)).expect("bind chaos proxy");
    let proxy_addr = proxy.addr();

    let pre = Arc::new(pre_expected);
    let post = Arc::new(post_expected);
    let db_path = Arc::new(fixture.db_path.clone());
    let deltas_text = Arc::new(deltas_text);
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let (pre, post) = (Arc::clone(&pre), Arc::clone(&post));
            let db_path = Arc::clone(&db_path);
            let deltas_text = Arc::clone(&deltas_text);
            std::thread::spawn(move || {
                let mut client = Client::connect(proxy_addr).expect("dial proxy");
                client.retry = Some(RetryPolicy {
                    retries: 12,
                    seed: 3000 + c as u64,
                    base_ms: 5,
                    cap_ms: 100,
                });
                let mut updated = false;
                let mut checked = 0usize;
                for round in 0..rounds {
                    // Client 0 keeps re-applying the delta (idempotent, so
                    // wire retries and repeats are safe); the others query.
                    if c == 0 && round % 2 == 0 {
                        match client.update(&db_path, &deltas_text) {
                            Ok(_) => updated = true,
                            Err(e) => {
                                assert!(
                                    KNOWN_CODES.contains(&e.code),
                                    "client {c} round {round}: unknown code {:?} ({})",
                                    e.code,
                                    e.message
                                );
                                if e.code == "io" {
                                    client.reconnect().expect("reconnect after loss");
                                }
                            }
                        }
                        continue;
                    }
                    match client.batch(&db_path, QUERIES_TEXT) {
                        Ok(verdicts) => {
                            assert!(
                                verdicts == *pre || verdicts == *post,
                                "client {c} round {round}: half-applied answers {verdicts:?} \
                                 (pre {pre:?}, post {post:?})"
                            );
                            if updated {
                                assert_eq!(
                                    verdicts, *post,
                                    "client {c} round {round}: session reverted after own update"
                                );
                            }
                            checked += 1;
                        }
                        Err(e) => {
                            assert!(
                                KNOWN_CODES.contains(&e.code),
                                "client {c} round {round}: unknown code {:?} ({})",
                                e.code,
                                e.message
                            );
                            if e.code == "io" {
                                client.reconnect().expect("reconnect after loss");
                            }
                        }
                    }
                }
                (updated, checked)
            })
        })
        .collect();
    let mut any_updated = false;
    let mut checked = 0usize;
    for client in clients {
        let (updated, n) = client.join().expect("torn-update client panicked");
        any_updated |= updated;
        checked += n;
    }
    assert!(checked > 0, "the soak must complete some batches");

    // The server survived; a direct connection settles the final state.
    proxy.stop();
    let mut direct = Client::connect(server_addr).expect("server must still accept");
    let final_verdicts = direct
        .batch(&fixture.db_path, QUERIES_TEXT)
        .expect("direct batch after the storm");
    let stats_applied = server.manager_stats().delta_applied;
    if any_updated || stats_applied > 0 {
        // At least one application landed (even if its reply was lost):
        // the session must be fully post-delta.
        assert_eq!(final_verdicts, *post, "final state is not the whole delta");
    } else {
        assert_eq!(final_verdicts, *pre, "no update landed, yet the db moved");
    }
    direct.shutdown().expect("clean shutdown after the storm");
}

#[test]
fn seeded_chaos_soak_never_wedges_and_verdicts_stay_byte_identical() {
    let rounds: usize = std::env::var("CQA_CHAOS_ROUNDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(15);
    let fixture = Fixture::new();

    let mut config = ServeConfig::new(cli_loader());
    config.addr = "127.0.0.1:0".to_string();
    config.threads = 2;
    config.engine = cqa::EngineConfig::default().with_threads(1);
    let server = serve(config).expect("bind soak server");
    let server_addr = server.addr();

    let proxy = chaos_proxy(server_addr, ChaosPlan::rough(0xC0A)).expect("bind chaos proxy");
    let proxy_addr = proxy.addr();

    let expected = Arc::new(fixture.expected.clone());
    let db_path = Arc::new(fixture.db_path.clone());
    let clients: Vec<_> = (0..3)
        .map(|c| {
            let expected = Arc::clone(&expected);
            let db_path = Arc::clone(&db_path);
            std::thread::spawn(move || {
                let mut coded_failures = 0usize;
                let mut reconnects = 0usize;
                let mut verdicts_checked = 0usize;
                let mut client = Client::connect(proxy_addr).expect("dial proxy");
                client.retry = Some(RetryPolicy {
                    retries: 12,
                    seed: 1000 + c as u64,
                    base_ms: 5,
                    cap_ms: 100,
                });
                for round in 0..rounds {
                    // Alternate request shapes so both short (certain)
                    // and long (batch) frames cross the mangled wire.
                    let outcome = if round % 2 == 0 {
                        client.batch(&db_path, QUERIES_TEXT).map(|verdicts| {
                            assert_eq!(
                                verdicts, *expected,
                                "client {c} round {round}: batch verdicts diverged"
                            );
                            verdicts.len()
                        })
                    } else {
                        client.certain(&db_path, "R(x | y) R(y | z)").map(|v| {
                            assert_eq!(
                                v, expected[0],
                                "client {c} round {round}: certain verdict diverged"
                            );
                            1
                        })
                    };
                    match outcome {
                        Ok(n) => verdicts_checked += n,
                        Err(e) => {
                            // Guarantee 3: nothing outside the table.
                            assert!(
                                KNOWN_CODES.contains(&e.code),
                                "client {c} round {round}: unknown error code {:?} ({})",
                                e.code,
                                e.message
                            );
                            coded_failures += 1;
                            if e.code == "io" {
                                client.reconnect().expect("reconnect after transport loss");
                                reconnects += 1;
                            }
                        }
                    }
                }
                (coded_failures, reconnects, verdicts_checked)
            })
        })
        .collect();

    let mut verdicts_checked = 0usize;
    for client in clients {
        let (_, _, checked) = client.join().expect("soak client panicked");
        verdicts_checked += checked;
    }
    assert!(
        verdicts_checked > 0,
        "the soak must complete some verdicts, not fail every round"
    );

    // Guarantee 1: the server itself survived the abuse — a *direct*
    // connection (no proxy) still answers, with parity intact.
    let tally = proxy.stop();
    let mut direct = Client::connect(server_addr).expect("server must still accept");
    direct.ping().expect("server must still answer ping");
    let verdicts = direct
        .batch(&fixture.db_path, QUERIES_TEXT)
        .expect("direct batch after the storm");
    assert_eq!(verdicts, fixture.expected, "post-soak verdicts diverged");
    direct.shutdown().expect("clean shutdown after the storm");
    let stats = server.wait();
    assert_eq!(stats.cancelled, 0, "no deadlines were set: {stats:?}");

    // The storm must have actually stormed, in every way the plan
    // allows — otherwise this test proves nothing.
    assert!(tally.connections >= 3, "{tally:?}");
    assert!(tally.delays > 0, "delay die never fired: {tally:?}");
    assert!(tally.splits > 0, "split die never fired: {tally:?}");
    assert!(
        tally.drops + tally.resets > 0,
        "no connection-loss fault fired: {tally:?}"
    );
}
