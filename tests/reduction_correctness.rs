//! Integration: both executable reductions verified end-to-end with
//! independent engines on randomized inputs.

use cqa::solvers::{certain_brute, certain_brute_budgeted, BruteOutcome};
use cqa::tripath::SearchConfig;
use cqa_query::examples;
use cqa_reductions::{reduce_database, SatReduction};
use cqa_sat::{random_3sat, solve, to_occ3_normal_form};
use cqa_workloads::{random_sjf_db, RandomDbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn prop41_equivalence_on_random_sjf_databases() {
    // certain(sjf(q), D) ⟺ certain(q, μ(D)) for q2 and q5 (queries where
    // the self-join side is interesting).
    for (name, q) in [("q2", examples::q2()), ("q5", examples::q5())] {
        let sjf = q.sjf();
        let mut rng = StdRng::seed_from_u64(0x41);
        let cfg = RandomDbConfig {
            blocks: 6,
            max_block_size: 2,
            domain: 3,
        };
        for t in 0..40 {
            let d = random_sjf_db(&mut rng, &q, &cfg);
            let before = certain_brute(&sjf, &d);
            let reduced = reduce_database(&q, &d);
            assert_eq!(reduced.len(), d.len(), "μ is fact-wise injective here");
            let after = certain_brute(&q, &reduced);
            assert_eq!(
                before, after,
                "{name} trial {t}: Prop 4.1 violated on {d:?}"
            );
        }
    }
}

#[test]
fn prop41_preserves_block_structure() {
    let q = examples::q2();
    let mut rng = StdRng::seed_from_u64(0x42);
    let cfg = RandomDbConfig {
        blocks: 8,
        max_block_size: 3,
        domain: 3,
    };
    for _ in 0..20 {
        let d = random_sjf_db(&mut rng, &q, &cfg);
        let reduced = reduce_database(&q, &d);
        assert_eq!(reduced.block_count(), d.block_count());
        assert_eq!(reduced.repair_count(), d.repair_count());
    }
}

#[test]
fn lemma92_satisfiable_sweep() {
    // φ satisfiable ⇒ D[φ] not certain: cheap direction (the search only
    // needs to find one falsifying repair).
    let q2 = examples::q2();
    let reduction = SatReduction::new(&q2, &SearchConfig::default()).expect("gadget for q2");
    let mut rng = StdRng::seed_from_u64(0x92);
    let mut sat_seen = 0;
    for t in 0..8 {
        let n_vars = 3 + (t % 2) as u32;
        let n_clauses = 2 + t % 4; // under-constrained: almost surely SAT
        let phi = to_occ3_normal_form(&random_3sat(&mut rng, n_vars, n_clauses));
        if !solve(&phi).is_sat() {
            continue;
        }
        sat_seen += 1;
        let db = reduction.database(&phi).expect("normal form");
        match certain_brute_budgeted(&q2, &db, 100_000_000) {
            BruteOutcome::NotCertain(r) => {
                let sols = cqa::solvers::SolutionSet::enumerate(&q2, &db);
                assert!(!cqa::solvers::solution::satisfies(&sols, r.facts()));
            }
            BruteOutcome::Certain => panic!("trial {t}: certain D[φ] for satisfiable φ = {phi}"),
            BruteOutcome::BudgetExhausted => panic!("trial {t}: SAT side should be fast"),
        }
    }
    assert!(sat_seen >= 4, "sweep must include satisfiable instances");
}

#[test]
fn lemma92_unsatisfiable_instance() {
    // φ unsatisfiable ⇒ D[φ] certain: the expensive direction, checked on
    // one fixed small instance (the reductions crate covers another).
    use cqa_sat::{Cnf, Lit, PVar};
    let (p0, p1) = (PVar(0), PVar(1));
    let phi = to_occ3_normal_form(&Cnf::from_clauses([
        vec![Lit::pos(p0), Lit::pos(p1)],
        vec![Lit::pos(p0), Lit::neg(p1)],
        vec![Lit::neg(p0), Lit::pos(p1)],
        vec![Lit::neg(p0), Lit::neg(p1)],
    ]));
    assert!(!solve(&phi).is_sat());
    let q2 = examples::q2();
    let reduction = SatReduction::new(&q2, &SearchConfig::default()).unwrap();
    let db = reduction.database(&phi).unwrap();
    let out = certain_brute_budgeted(&q2, &db, 500_000_000);
    assert!(
        matches!(out, BruteOutcome::Certain),
        "Lemma 9.2 violated on UNSAT φ: {out:?}"
    );
}

#[test]
fn gadget_blocks_are_all_contested() {
    // After padding, every block of D[φ] has ≥ 2 facts — the inconsistency
    // is total, which is what makes certain answering non-trivial.
    let q2 = examples::q2();
    let reduction = SatReduction::new(&q2, &SearchConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x93);
    let phi = to_occ3_normal_form(&random_3sat(&mut rng, 4, 6));
    let db = reduction.database(&phi).unwrap();
    for b in db.block_ids() {
        assert!(db.block(b).len() >= 2);
    }
    // Size is linear in the formula (the paper's polynomial reduction).
    let gadget_facts = reduction.tripath().facts().len();
    let occurrences: usize = phi.occurrences().values().map(|&(p, n)| p + n).sum();
    assert!(db.len() <= occurrences * (gadget_facts + 2) + 2 * phi.len());
}

#[test]
fn reduction_reuses_tripath_across_formulas() {
    // One SatReduction instance serves many formulas (the nice tripath
    // search runs once).
    let q2 = examples::q2();
    let reduction = SatReduction::new(&q2, &SearchConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(0x94);
    for _ in 0..5 {
        let phi = to_occ3_normal_form(&random_3sat(&mut rng, 3, 3));
        assert!(reduction.database(&phi).is_ok());
    }
}
