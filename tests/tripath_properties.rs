//! Integration: tripath machinery invariants across the symbolic search,
//! the validator, niceness, and in-database detection.

use cqa::solvers::{certain_brute, certk, CertKConfig};
use cqa::tripath::{
    check_nice, db_admits_tripath, find_nice_fork, find_tripath_in_db, g_of_center,
    search_tripaths, SearchConfig, TripathKind,
};
use cqa_query::{examples, is_solution, is_solution_unordered};
use cqa_workloads::{random_db, RandomDbConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn witnesses_satisfy_every_definition_clause() {
    // Re-verify the validator's work independently for q2's fork witness:
    // center solutions, block structure, g(e) conditions.
    let q2 = examples::q2();
    let out = search_tripaths(&q2, &SearchConfig::default());
    let tp = out.fork.expect("q2 fork");
    let (kind, center) = tp.validate(&q2).expect("validates");
    assert_eq!(kind, TripathKind::Fork);

    // Center really is a branching fact.
    assert!(is_solution(&q2, &center.d, &center.e));
    assert!(is_solution(&q2, &center.e, &center.f));
    assert!(!is_solution(&q2, &center.f, &center.d), "fork ⇒ no q(f d)");
    assert_eq!(center.g, g_of_center(&q2, &center.d, &center.e, &center.f));

    // Every parent/child pair is connected by a solution.
    for (i, b) in tp.blocks.iter().enumerate() {
        if let Some(p) = b.parent {
            let ap = tp.blocks[p].a.as_ref().expect("parent a-fact");
            let bb = b.b.as_ref().expect("child b-fact");
            assert!(is_solution_unordered(&q2, ap, bb), "edge {p}→{i}");
        }
    }

    // g(e) not included in any extremal key.
    let sig = q2.signature();
    let (u0, u1, u2) = tp.extremal_facts().unwrap();
    for u in [&u0, &u1, &u2] {
        assert!(!center.g.is_subset(&u.key_set(sig)));
    }
}

#[test]
fn symbolic_witnesses_round_trip_through_detection() {
    // Whatever the symbolic search produces must be re-found by the
    // concrete in-database detector, for both kinds.
    let cases = [(examples::q2(), true, false), (examples::q6(), false, true)];
    for (q, want_fork, want_triangle) in cases {
        let out = search_tripaths(&q, &SearchConfig::default());
        if want_fork {
            let db = out.fork.as_ref().expect("fork").database(&q);
            let det = find_tripath_in_db(&q, &db, 5_000_000);
            assert!(det.fork.is_some(), "{q}: fork not re-detected");
        }
        if want_triangle {
            let db = out.triangle.as_ref().expect("triangle").database(&q);
            let det = find_tripath_in_db(&q, &db, 5_000_000);
            assert!(det.triangle.is_some(), "{q}: triangle not re-detected");
        }
    }
}

#[test]
fn random_q5_databases_never_contain_tripaths() {
    // q5 admits no tripath at all (Section 8) — so no database does.
    let q5 = examples::q5();
    let mut rng = StdRng::seed_from_u64(0x55);
    let cfg = RandomDbConfig {
        blocks: 6,
        max_block_size: 3,
        domain: 3,
    };
    for t in 0..40 {
        let db = random_db(&mut rng, &q5, &cfg);
        assert!(
            !db_admits_tripath(&q5, &db, 5_000_000),
            "trial {t}: q5 database contains a tripath?!"
        );
    }
}

#[test]
fn prop82_certk_exact_without_tripaths() {
    // Proposition 8.2 instance-level: on q2 (a coNP query!) databases that
    // happen to contain no tripath, Cert_k still matches brute force.
    let q2 = examples::q2();
    let mut rng = StdRng::seed_from_u64(0x82);
    let cfg = RandomDbConfig {
        blocks: 5,
        max_block_size: 2,
        domain: 3,
    };
    let mut tripath_free = 0;
    for t in 0..60 {
        let db = random_db(&mut rng, &q2, &cfg);
        let det = find_tripath_in_db(&q2, &db, 5_000_000);
        if det.contains_tripath() || det.exhausted {
            continue;
        }
        tripath_free += 1;
        assert_eq!(
            certk(&q2, &db, CertKConfig::new(3)).is_certain(),
            certain_brute(&q2, &db),
            "trial {t}: Prop 8.2 violated on tripath-free {db:?}"
        );
    }
    assert!(
        tripath_free >= 20,
        "sweep must mostly produce tripath-free instances"
    );
}

#[test]
fn nice_fork_tripath_has_no_extra_solutions() {
    let q2 = examples::q2();
    let (tp, w) = find_nice_fork(&q2, &SearchConfig::default()).expect("nice fork");
    let db = tp.database(&q2);
    let sols = cqa::solvers::SolutionSet::enumerate(&q2, &db);
    // Exactly one solution per non-root block (the enforced ones), since a
    // fork adds no (f, d) edge.
    assert_eq!(sols.pairs().len(), tp.blocks.len() - 1);
    // Witness privacy: u, v, w appear only in their own facts.
    let sig = q2.signature();
    for (private, owner) in [(w.u, &w.u0), (w.v, &w.u1), (w.w, &w.u2)] {
        for fact in tp.facts() {
            if &fact != owner {
                assert!(
                    !fact.key_set(sig).contains(&private),
                    "{private} leaks into {fact}"
                );
            }
        }
    }
}

#[test]
fn niceness_checker_rejects_mutations() {
    // Corrupting a nice tripath must be caught by check_nice (or even by
    // the validator).
    let q2 = examples::q2();
    let (tp, _) = find_nice_fork(&q2, &SearchConfig::default()).expect("nice fork");

    // Mutation 1: drop the root block's fact (breaks the tree shape).
    let mut broken = tp.clone();
    broken.blocks[0].a = None;
    assert!(check_nice(&q2, &broken).is_err());

    // Mutation 2: duplicate a leaf fact into the root block (key collision
    // or placement violation).
    let mut broken2 = tp.clone();
    broken2.blocks[0].b = broken2.blocks.last().unwrap().b.clone();
    assert!(check_nice(&q2, &broken2).is_err());

    // Mutation 3: re-parent the branching block to itself (cycle).
    let mut broken3 = tp.clone();
    let br = broken3.branching_index().unwrap();
    broken3.blocks[br].parent = Some(br);
    assert!(check_nice(&q2, &broken3).is_err());
}

#[test]
fn search_is_deterministic_in_structure() {
    // Two runs produce witnesses of the same shape (fresh element identities
    // differ, but block counts and kinds must match).
    let q2 = examples::q2();
    let a = search_tripaths(&q2, &SearchConfig::default());
    let b = search_tripaths(&q2, &SearchConfig::default());
    assert_eq!(
        a.fork.as_ref().map(|t| t.blocks.len()),
        b.fork.as_ref().map(|t| t.blocks.len())
    );
    assert_eq!(a.triangle.is_some(), b.triangle.is_some());
}
